"""NAS Parallel Benchmarks corpus (SNU NPB C versions, 10 programs).

Each program reconstructs the reduction/SCoP population the paper
reports for the suite (Fig. 8a, Fig. 9, Fig. 12):

* 35 scalar reductions + 3 histograms (DC, EP, IS) across the suite;
* icc finds 25 (blocked on EP/IS by fmax+indirection, on SP by the
  fmin/fmax-laden kernels);
* Polly finds reductions only in BT and SP (the mid-nest ``rms``
  pattern inside constant-bound SCoPs) — 42 SCoPs total, 37 of them in
  the four stencil codes BT/LU/MG/SP, none at all in DC/EP/IS/UA.
"""

from __future__ import annotations

from . import kernels as k
from .spec import BenchmarkProgram, Expectation


def _bt() -> BenchmarkProgram:
    n = 20
    source = f"""
int nvals;
double u[{n * n}]; double rhs[{n * n}]; double work[{n * n}];
double forcing[{n * n}]; double rms[5]; double flux[512]; double qs[512];
""" + (
        k.fill_formula("init_u", "u", str(n * n))
        + k.fill_formula("init_rhs", "rhs", str(n * n), seed="0.27")
        + k.fill_formula("init_flux", "flux", "nvals", seed="0.41")
        + k.fill_formula("init_qs", "qs", "nvals", seed="0.77")
        # 9 constant-bound SCoPs: the ADI sweeps of BT.
        + k.stencil2d("x_solve", "u", "work", n, coeff="0.2")
        + k.stencil2d("y_solve", "work", "u", n, coeff="0.21")
        + k.stencil2d("z_solve", "u", "work", n, coeff="0.19")
        + k.stencil2d("compute_rhs_stencil", "u", "rhs", n, coeff="0.15")
        + k.stencil1d("exact_solution_row", "u", "work", n * n)
        + k.stencil1d("lhsinit_row", "rhs", "work", n * n, coeff="0.5")
        + k.axpy_const("add_update", "rhs", "u", n * n, alpha="0.9")
        + k.axpy_const("forcing_update", "forcing", "rhs", n * n,
                       alpha="0.3")
        + k.transpose_const("pivot_transpose", "u", "work", n)
        # The mid-nest rms error norm: Polly-only (§6.1).
        + k.midnest_array_reduction("error_norm", "u", "rms", 8, 10, 5)
        # Our three scalar reductions (also found by icc).
        + k.plain_sum("flux_total", "flux", "nvals")
        + k.guarded_sum("positive_flux", "flux", "nvals", thresh="0.4")
        + k.dot_product("qs_dot_flux", "qs", "flux", "nvals")
        + k.checksum("verify", "u", "nvals")
    ) + """
int main(void) {
    nvals = 300;
    init_u(); init_rhs(); init_flux(); init_qs();
    x_solve(); y_solve(); z_solve();
    compute_rhs_stencil(); exact_solution_row(); lhsinit_row();
    add_update(); forcing_update(); pivot_transpose();
    error_norm();
    double a = flux_total();
    double b = positive_flux();
    double c = qs_dot_flux();
    print_double(a + b + c + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "BT", "NAS", source,
        Expectation(ours_scalars=3, ours_histograms=0, icc=3,
                    polly_reductions=1, scops=10, reduction_scops=1),
        notes="stencil SCoPs + Polly-only mid-nest rms reduction",
    )


def _cg() -> BenchmarkProgram:
    source = """
int nvals; int nnz;
double x[600]; double z[600]; double p[600]; double q[600];
double vals[2048]; int cols[2048];
""" + (
        k.fill_formula("init_x", "x", "nvals")
        + k.fill_formula("init_z", "z", "nvals", seed="0.35")
        + k.fill_formula("init_p", "p", "nvals", seed="0.52")
        + k.fill_formula("init_vals", "vals", "nnz", seed="0.81")
        + k.fill_keys("init_cols", "cols", "nnz", "600")
        # The sparse matvec: a gather sum nobody auto-detects.
        + k.gather_sum("spmv_row", "vals", "cols", "nnz")
        # Our three scalar reductions (norms and dot products of CG).
        + k.plain_sum("norm_z", "z", "nvals")
        + k.dot_product("rho", "x", "z", "nvals")
        + k.dot_product("alpha_den", "p", "q", "nvals")
        # Two constant-bound helper SCoPs.
        + k.axpy_const("update_p", "z", "p", 600, alpha="0.8")
        + k.stencil1d("smooth_q", "p", "q", 600)
        + k.checksum("verify", "z", "nvals")
    ) + """
int main(void) {
    nvals = 500; nnz = 1500;
    init_x(); init_z(); init_p(); init_vals(); init_cols();
    update_p(); smooth_q();
    double s = spmv_row() + norm_z() + rho() + alpha_den();
    print_double(s + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "CG", "NAS", source,
        Expectation(ours_scalars=3, icc=3, scops=2),
        notes="gather matvec undetectable by all; dense norms detected",
    )


def _dc() -> BenchmarkProgram:
    source = """
int ntuples;
int cube[512]; int keys[4096];
double measures[4096];
""" + (
        k.fill_keys("init_keys", "keys", "ntuples", "512")
        + k.fill_formula("init_measures", "measures", "ntuples")
        # Aggregate view counting: a direct histogram.
        + k.direct_histogram("aggregate_views", "cube", "keys", "ntuples")
        # Two scalar reductions over the measures.
        + k.plain_sum("sum_measures", "measures", "ntuples")
        + k.count_if("count_hot", "measures", "ntuples", thresh="0.7")
        + k.checksum("verify", "measures", "ntuples")
    ) + """
int main(void) {
    ntuples = 2600;
    init_keys(); init_measures();
    aggregate_views(); aggregate_views(); aggregate_views();
    aggregate_views();
    double s = sum_measures();
    int c = count_hot();
    print_double(s + c + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "DC", "NAS", source,
        Expectation(ours_scalars=2, ours_histograms=1, icc=2),
        notes="data-cube aggregation histogram",
    )


def _ep() -> BenchmarkProgram:
    # Figure 2 of the paper, verbatim modulo syntax: the histogram of
    # gaussian deviate magnitudes plus the sx/sy scalar reductions.
    source = """
const int NK = 6000;
int nvals;
double x[12000]; double q[16]; double sx; double sy;

void vranlc(void) {
    for (int i = 0; i < 2 * NK; i++) {
        x[i] = fmod(0.618033988 * (i + 1) + 0.318309886, 1.0);
    }
}

void gaussian_pairs(void) {
    double lsx = 0.0;
    double lsy = 0.0;
    for (int i = 0; i < NK; i++) {
        double x1 = 2.0 * x[2 * i] - 1.0;
        double x2 = 2.0 * x[2 * i + 1] - 1.0;
        double t1 = x1 * x1 + x2 * x2;
        if (t1 <= 1.0) {
            double t2 = sqrt(-2.0 * log(t1) / t1);
            double t3 = x1 * t2;
            double t4 = x2 * t2;
            int l = (int) fmax(fabs(t3), fabs(t4));
            q[l] = q[l] + 1.0;
            lsx = lsx + t3;
            lsy = lsy + t4;
        }
    }
    sx = lsx;
    sy = lsy;
}
""" + (
        k.checksum("verify", "x", "nvals")
        + k.seq_recurrence("moment_filter", "x", "nvals")
    ) + """
int main(void) {
    nvals = 12000;
    vranlc();
    gaussian_pairs();
    double qsum = 0.5 * q[0] + 0.25 * q[1] + q[2];
    print_double(sx + sy + qsum + moment_filter() + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "EP", "NAS", source,
        Expectation(ours_scalars=2, ours_histograms=1, icc=0),
        original_strategy="coarse",
        notes="the paper's running example (Figure 2)",
    )


def _ft() -> BenchmarkProgram:
    n = 24
    source = f"""
int nvals;
double re[{n * n}]; double im[{n * n}]; double twiddle[{n * n}];
double scratch[{n * n}];
""" + (
        k.fill_formula("init_re", "re", "nvals")
        + k.fill_formula("init_im", "im", "nvals", seed="0.44")
        + k.fill_formula("init_tw", "twiddle", str(n * n), seed="0.29")
        # Three constant-bound SCoPs (FFT butterflies as stencils).
        + k.stencil2d("cffts1", "re", "scratch", n, coeff="0.31")
        + k.transpose_const("transpose_xy", "re", "scratch", n)
        + k.axpy_const("evolve", "twiddle", "im", n * n, alpha="0.99")
        # Two checksum reductions (found by icc as well).
        + k.plain_sum("checksum_re", "re", "nvals")
        + k.dot_product("checksum_im", "im", "twiddle", "nvals")
        + k.checksum("verify", "re", "nvals")
    ) + """
int main(void) {
    nvals = 500;
    init_re(); init_im(); init_tw();
    cffts1(); transpose_xy(); evolve();
    print_double(checksum_re() + checksum_im() + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "FT", "NAS", source,
        Expectation(ours_scalars=2, icc=2, scops=3),
        notes="FFT checksum reductions",
    )


def _is() -> BenchmarkProgram:
    source = """
int nkeys; int maxkey; int nvals;
int key_buff[1536]; int key_buff2[16384];
double weights[16384];

void create_seq(void) {
    for (int i = 0; i < nkeys; i++) {
        key_buff2[i] = (i * 211 + i / 7) % maxkey;
    }
}
""" + (
        k.fill_formula("init_weights", "weights", "nvals")
        # The IS bottleneck (§6.1): a plain histogram without any
        # complications, run over several ranking iterations.
        + k.direct_histogram("rank_keys", "key_buff", "key_buff2", "nkeys")
        + k.checksum("verify", "weights", "nvals")
    ) + """
int main(void) {
    nkeys = 16384; maxkey = 1536; nvals = 700;
    create_seq();
    init_weights();
    rank_keys(); rank_keys(); rank_keys(); rank_keys();
    rank_keys(); rank_keys(); rank_keys(); rank_keys();
    print_int(key_buff[0] + key_buff[1] + key_buff[1023]);
    print_double(verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "IS", "NAS", source,
        Expectation(ours_histograms=1, icc=0),
        original_strategy="bucketed",
        notes="plain key-ranking histogram; icc finds nothing (§6.1)",
    )


def _lu() -> BenchmarkProgram:
    n = 20
    source = f"""
int nvals;
double u[{n * n}]; double rsd[{n * n}]; double frct[{n * n}];
double flux[512]; double a_diag[512];
""" + (
        k.fill_formula("init_u", "u", str(n * n))
        + k.fill_formula("init_rsd", "rsd", str(n * n), seed="0.23")
        + k.fill_formula("init_flux", "flux", "nvals", seed="0.67")
        + k.fill_formula("init_diag", "a_diag", "nvals", seed="0.13")
        # Nine constant-bound SCoPs: the SSOR sweeps.
        + k.stencil2d("blts_sweep", "u", "rsd", n, coeff="0.18")
        + k.stencil2d("buts_sweep", "rsd", "u", n, coeff="0.17")
        + k.stencil2d("jacld", "u", "frct", n, coeff="0.22")
        + k.stencil2d("jacu", "frct", "rsd", n, coeff="0.16")
        + k.stencil2d("rhs_x", "u", "frct", n, coeff="0.26")
        + k.stencil1d("rhs_y_row", "u", "rsd", n * n)
        + k.stencil1d("rhs_z_row", "rsd", "frct", n * n, coeff="0.4")
        + k.axpy_const("ssor_update", "rsd", "u", n * n, alpha="1.2")
        + k.transpose_const("pintgr_transpose", "u", "frct", n)
        # Four scalar reductions (all icc-friendly).
        + k.plain_sum("l2norm_flux", "flux", "nvals")
        + k.guarded_sum("positive_diag", "a_diag", "nvals", thresh="0.3")
        + k.dot_product("flux_dot_diag", "flux", "a_diag", "nvals")
        + k.math_sum("sqrt_norm", "flux", "nvals", call="sqrt")
        + k.checksum("verify", "u", "nvals")
    ) + """
int main(void) {
    nvals = 400;
    init_u(); init_rsd(); init_flux(); init_diag();
    blts_sweep(); buts_sweep(); jacld(); jacu();
    rhs_x(); rhs_y_row(); rhs_z_row(); ssor_update(); pintgr_transpose();
    double s = l2norm_flux() + positive_diag() + flux_dot_diag()
        + sqrt_norm();
    print_double(s + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "LU", "NAS", source,
        Expectation(ours_scalars=4, icc=4, scops=9),
        notes="SSOR stencil SCoPs + norm reductions",
    )


def _mg() -> BenchmarkProgram:
    n = 22
    source = f"""
int nvals; int stride; int ncoarse;
double v[{n * n}]; double r[{n * n}]; double z[{n * n}];
double resid_hist[512];
""" + (
        k.fill_formula("init_v", "v", str(n * n))
        + k.fill_formula("init_r", "r", str(n * n), seed="0.38")
        + k.fill_formula("init_hist", "resid_hist", "nvals", seed="0.59")
        # Eight constant-bound SCoPs: the multigrid cycle.
        + k.stencil2d("psinv", "r", "z", n, coeff="0.23")
        + k.stencil2d("resid", "v", "r", n, coeff="0.2")
        + k.stencil2d("rprj3", "r", "z", n, coeff="0.12")
        + k.stencil2d("interp", "z", "v", n, coeff="0.45")
        + k.stencil1d("comm3_row", "v", "z", n * n)
        + k.stencil1d("zero3_row", "z", "r", n * n, coeff="0.0")
        + k.axpy_const("mg_update", "z", "v", n * n, alpha="1.1")
        + k.axpy_const("residual_update", "r", "z", n * n, alpha="0.7")
        # Three scalar reductions.
        + k.plain_sum("norm2u3", "resid_hist", "nvals")
        + k.math_sum("rnm2", "resid_hist", "nvals", call="sqrt")
        + k.strided_sum("coarse_norm", "resid_hist", "ncoarse", "stride")
        + k.checksum("verify", "v", "nvals")
    ) + """
int main(void) {
    nvals = 400; stride = 2; ncoarse = 200;
    init_v(); init_r(); init_hist();
    psinv(); resid(); rprj3(); interp();
    comm3_row(); zero3_row(); mg_update(); residual_update();
    double s = norm2u3() + rnm2() + coarse_norm();
    print_double(s + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "MG", "NAS", source,
        Expectation(ours_scalars=3, icc=3, scops=8),
        notes="multigrid stencil SCoPs + residual norms",
    )


def _sp() -> BenchmarkProgram:
    n = 20
    source = f"""
int nvals;
double u[{n * n}]; double rhs[{n * n}]; double lhs[{n * n}];
double rms[5]; double speeds[512]; double ws[512];
""" + (
        k.fill_formula("init_u", "u", str(n * n))
        + k.fill_formula("init_rhs", "rhs", str(n * n), seed="0.31")
        + k.fill_formula("init_speeds", "speeds", "nvals", seed="0.71")
        + k.fill_formula("init_ws", "ws", "nvals", seed="0.19")
        # Nine constant-bound SCoPs: the scalar-pentadiagonal sweeps.
        + k.stencil2d("x_solve_sp", "u", "lhs", n, coeff="0.24")
        + k.stencil2d("y_solve_sp", "lhs", "u", n, coeff="0.25")
        + k.stencil2d("z_solve_sp", "u", "lhs", n, coeff="0.23")
        + k.stencil2d("compute_rhs_sp", "u", "rhs", n, coeff="0.14")
        + k.stencil2d("txinvr", "rhs", "lhs", n, coeff="0.33")
        + k.stencil1d("ninvr_row", "u", "lhs", n * n)
        + k.stencil1d("pinvr_row", "lhs", "rhs", n * n, coeff="0.6")
        + k.axpy_const("add_sp", "rhs", "u", n * n, alpha="0.95")
        + k.transpose_const("swap_xy", "u", "lhs", n)
        # The rms error norm of §6.1 — found only by Polly.
        + k.midnest_array_reduction("rhs_norm", "rhs", "rms", 8, 10, 5)
        # Five scalar reductions, all fmin/fmax-laden: ours finds them,
        # icc refuses the calls (hence "icc does not detect reductions
        # in SP").
        + k.fminmax_sum("max_speed", "speeds", "nvals", call="fmax")
        + k.fminmax_sum("min_ws", "ws", "nvals", call="fmin")
        + k.fminmax_guarded_sum("bounded_speed_energy", "speeds", "nvals",
                                call="fmin")
        + k.fminmax_guarded_sum("bounded_ws_energy", "ws", "nvals",
                                call="fmax")
        + k.fminmax_guarded_sum("dissipation", "speeds", "nvals",
                                call="fmax")
        + k.checksum("verify", "u", "nvals")
    ) + """
int main(void) {
    nvals = 400;
    init_u(); init_rhs(); init_speeds(); init_ws();
    x_solve_sp(); y_solve_sp(); z_solve_sp(); compute_rhs_sp();
    txinvr(); ninvr_row(); pinvr_row(); add_sp(); swap_xy();
    rhs_norm();
    double s = max_speed() + min_ws() + bounded_speed_energy()
        + bounded_ws_energy() + dissipation();
    print_double(s + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "SP", "NAS", source,
        Expectation(ours_scalars=5, icc=0, polly_reductions=1,
                    scops=10, reduction_scops=1),
        notes="fmin/fmax reductions block icc; Polly-only rms norm",
    )


def _ua() -> BenchmarkProgram:
    source = """
int nvals; int nelems;
double mass[900]; double adapt[900]; double res[900]; double tmom[900];
double diag[900]; int refine_idx[900];
""" + (
        k.fill_formula("init_mass", "mass", "nvals")
        + k.fill_formula("init_adapt", "adapt", "nvals", seed="0.47")
        + k.fill_formula("init_res", "res", "nvals", seed="0.09")
        + k.fill_formula("init_tmom", "tmom", "nvals", seed="0.83")
        + k.fill_formula("init_diag", "diag", "nvals", seed="0.57")
        + k.fill_keys("init_refine", "refine_idx", "nvals", "900")
        # Eight icc-friendly scalar reductions.
        + k.plain_sum("total_mass", "mass", "nvals")
        + k.plain_sum("total_moment", "tmom", "nvals")
        + k.guarded_sum("adapted_mass", "adapt", "nvals", thresh="0.5")
        + k.guarded_sum("refined_residual", "res", "nvals", thresh="0.2")
        + k.dot_product("mass_dot_diag", "mass", "diag", "nvals")
        + k.math_sum("residual_norm", "res", "nvals", call="sqrt")
        + k.ternary_max("peak_adapt", "adapt", "nvals")
        + k.count_if("count_refined", "adapt", "nvals", thresh="0.6")
        # Three fmin/fmax reductions icc refuses.
        + k.fminmax_sum("max_residual", "res", "nvals", call="fmax")
        + k.fminmax_sum("min_diag", "diag", "nvals", call="fmin")
        + k.fminmax_guarded_sum("utol_energy", "adapt", "nvals",
                                call="fmax")
        # The unstructured gather nobody detects.
        + k.gather_sum("gather_refined", "mass", "refine_idx", "nelems")
        + k.checksum("verify", "mass", "nvals")
    ) + """
int main(void) {
    nvals = 700; nelems = 500;
    init_mass(); init_adapt(); init_res(); init_tmom(); init_diag();
    init_refine();
    double s = total_mass() + total_moment() + adapted_mass()
        + refined_residual() + mass_dot_diag() + residual_norm()
        + peak_adapt() + count_refined() + max_residual() + min_diag()
        + utol_energy() + gather_refined();
    print_double(s + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "UA", "NAS", source,
        Expectation(ours_scalars=11, icc=8),
        notes="the most reductions in NAS (11, §6.1)",
    )


def build_suite() -> list[BenchmarkProgram]:
    """All ten NAS programs."""
    return [_bt(), _cg(), _dc(), _ep(), _ft(), _is(), _lu(), _mg(),
            _sp(), _ua()]
