"""Parboil benchmark corpus (11 programs).

Paper ground truth (Fig. 8b, Fig. 10, Fig. 13): reductions in exactly
five programs — cutcp (7, the suite maximum), histo and tpacf (one
histogram each), mri-q and sgemm (one scalar each); icc finds 3 (one in
each of cutcp/mri-q/sgemm — the fmin/fmax calls hide the rest of
cutcp); Polly finds only sgemm's; 6 SCoPs total, none in 7 of 11
programs.
"""

from __future__ import annotations

from . import kernels as k
from .spec import BenchmarkProgram, Expectation


def _bfs() -> BenchmarkProgram:
    source = """
int nnodes; int nedges;
int edge_dst[2048]; int node_cost[512]; int frontier[512]; int next_frontier[512];
double weights[2048];
""" + (
        k.fill_keys("init_edges", "edge_dst", "nedges", "512")
        + k.fill_formula("init_weights", "weights", "nedges")
        + """
// Frontier propagation: scatter writes through the edge list.  The
// indirect overwrite is not a read-modify-write, so it is not a
// histogram; nothing here is a reduction.
void bfs_step(void) {
    for (int e = 0; e < nedges; e++) {
        int dst = edge_dst[e];
        if (node_cost[dst] == 0) {
            next_frontier[dst] = 1;
        }
    }
}
"""
        + k.checksum("verify", "weights", "nedges")
    ) + """
int main(void) {
    nnodes = 400; nedges = 1600;
    init_edges(); init_weights();
    bfs_step(); bfs_step();
    print_double(verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "bfs", "Parboil", source,
        Expectation(),
        notes="indirect frontier scatter; no reductions anywhere",
    )


def _cutcp() -> BenchmarkProgram:
    source = """
int natoms; int ngrid;
double atom_q[1024]; double atom_x[1024]; double atom_y[1024];
double grid_pot[1024]; double cell_d[1024];
""" + (
        k.fill_formula("init_q", "atom_q", "natoms")
        + k.fill_formula("init_x", "atom_x", "natoms", seed="0.37")
        + k.fill_formula("init_y", "atom_y", "natoms", seed="0.73")
        + k.fill_formula("init_d", "cell_d", "natoms", seed="0.21")
        # Seven reductions: cutoff potential sums.  Six involve
        # fmin/fmax (icc refuses the unknown calls, §6.1); one is a
        # plain sum icc accepts.
        + k.plain_sum("total_charge", "atom_q", "natoms")
        + k.fminmax_sum("max_coord_x", "atom_x", "natoms", call="fmax")
        + k.fminmax_sum("max_coord_y", "atom_y", "natoms", call="fmax")
        + k.fminmax_sum("min_cell_d", "cell_d", "natoms", call="fmin")
        + k.fminmax_guarded_sum("cutoff_pot_x", "atom_x", "natoms",
                                call="fmin")
        + k.fminmax_guarded_sum("cutoff_pot_y", "atom_y", "natoms",
                                call="fmin")
        + k.fminmax_guarded_sum("cutoff_energy", "atom_q", "natoms",
                                call="fmax")
        + k.scale_map("spread_charge", "atom_q", "grid_pot", "natoms")
        + """
// The cutoff lattice sweep dominates cutcp's runtime; it scatters
// exponentially decayed contributions (overwrites, so no reduction).
void lattice_sweep(void) {
    for (int i = 0; i < natoms; i++) {
        double decay = exp(0.0 - cell_d[i]);
        for (int w = 0; w < 16; w++) {
            grid_pot[(i * 16 + w) % 1024] = atom_q[i] * decay;
        }
    }
}
"""
        + k.checksum("verify", "grid_pot", "natoms")
    ) + """
int main(void) {
    natoms = 900;
    init_q(); init_x(); init_y(); init_d();
    spread_charge();
    lattice_sweep();
    double s = total_charge() + max_coord_x() + max_coord_y()
        + min_cell_d() + cutoff_pot_x() + cutoff_pot_y()
        + cutoff_energy();
    print_double(s + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "cutcp", "Parboil", source,
        Expectation(ours_scalars=7, icc=1),
        notes="suite maximum (7); fmin/fmax hides 6 of them from icc",
    )


def _histo() -> BenchmarkProgram:
    source = """
int npixels; int nbins; int nvals;
double img[32768]; int hist[3000];
""" + (
        k.fill_formula("init_img", "img", "npixels", seed="0.433")
        # The benchmark's eponymous kernel: bin from pixel intensity.
        + k.image_histogram("compute_histo", "hist", "img", "npixels",
                            "nbins")
        + k.checksum("verify", "img", "nvals")
    ) + """
int main(void) {
    npixels = 24000; nbins = 3000; nvals = 900;
    init_img();
    compute_histo(); compute_histo();
    print_int(hist[0] + hist[1] + hist[2999]);
    print_double(verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "histo", "Parboil", source,
        Expectation(ours_histograms=1),
        original_strategy="atomic",
        notes="image histogram; privatization-limited speedup (§6.3)",
    )


def _lbm() -> BenchmarkProgram:
    n = 18
    source = f"""
int ncells;
double src_grid[{n * n}]; double dst_grid[{n * n}]; double flags[{n * n}];
""" + (
        k.fill_formula("init_grid", "src_grid", "ncells")
        + k.fill_formula("init_flags", "flags", "ncells", seed="0.61")
        + """
// The collide-stream kernel: data-dependent branching on cell flags,
// neighbour writes — no reductions.
void collide_stream(void) {
    for (int i = 1; i < ncells - 1; i++) {
        double rho = src_grid[i - 1] + src_grid[i] + src_grid[i + 1];
        if (flags[i] > 0.5) {
            dst_grid[i] = rho * 0.333;
        } else {
            dst_grid[i] = src_grid[i];
        }
    }
}
"""
        + k.axpy_const("relax_update", "src_grid", "dst_grid", n * n,
                       alpha="0.6")
        + k.checksum("verify", "dst_grid", "ncells")
    ) + """
int main(void) {
    ncells = 300;
    init_grid(); init_flags();
    collide_stream(); relax_update();
    print_double(verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "lbm", "Parboil", source,
        Expectation(scops=1),
        notes="flag-dependent streaming; one constant-bound SCoP",
    )


def _mri_gridding() -> BenchmarkProgram:
    source = """
int nsamples;
double sample_re[2048]; double sample_kx[2048]; double grid_re[1024];
""" + (
        k.fill_formula("init_re", "sample_re", "nsamples")
        + k.fill_formula("init_kx", "sample_kx", "nsamples", seed="0.53")
        + """
// Gridding: scatter each sample to its nearest grid cell.  The write
// is an overwrite (no read-modify-write), so no histogram is formed.
void grid_samples(void) {
    for (int i = 0; i < nsamples; i++) {
        int cell = (int) (sample_kx[i] * 1023.0);
        grid_re[cell] = sample_re[i];
    }
}
"""
        + k.checksum("verify", "sample_re", "nsamples")
    ) + """
int main(void) {
    nsamples = 1200;
    init_re(); init_kx();
    grid_samples();
    print_double(verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "mri-gridding", "Parboil", source,
        Expectation(),
        notes="indirect scatter overwrite: not a reduction",
    )


def _mri_q() -> BenchmarkProgram:
    source = """
int nk;
double phi_r[2048]; double k_space[2048];
""" + (
        k.fill_formula("init_phi", "phi_r", "nk")
        + k.fill_formula("init_k", "k_space", "nk", seed="0.77")
        + """
// The Q-matrix accumulation: a cosine-weighted sum (icc knows cos).
double compute_q(void) {
    double q = 0.0;
    for (int i = 0; i < nk; i++) {
        q = q + phi_r[i] * cos(k_space[i]);
    }
    return q;
}
"""
        + k.checksum("verify", "phi_r", "nk")
    ) + """
int main(void) {
    nk = 1100;
    init_phi(); init_k();
    print_double(compute_q() + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "mri-q", "Parboil", source,
        Expectation(ours_scalars=1, icc=1),
        notes="trigonometric weighted sum",
    )


def _sad() -> BenchmarkProgram:
    source = """
int nblocks; int bwidth;
double cur_frame[4096]; double ref_frame[4096]; double sad_out[4096];
double blk[1024];
""" + (
        k.fill_formula("init_cur", "cur_frame", "nblocks * bwidth")
        + k.fill_formula("init_ref", "ref_frame", "nblocks * bwidth",
                         seed="0.41")
        + k.blocked_abs_diff("compute_sad", "cur_frame", "ref_frame",
                             "sad_out", "nblocks", "bwidth")
        + k.transpose_const("reorder_blocks", "blk", "sad_out", 32)
        + k.checksum("verify", "sad_out", "nblocks")
    ) + """
int main(void) {
    nblocks = 100; bwidth = 16;
    init_cur(); init_ref();
    compute_sad(); reorder_blocks();
    print_double(verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "sad", "Parboil", source,
        Expectation(scops=1),
        notes="per-position accumulation is a parallel write, not a "
              "reduction",
    )


def _sgemm() -> BenchmarkProgram:
    n = 24
    source = f"""
int nvals;
double mat_a[{n * n}]; double mat_b[{n * n}]; double mat_c[{n * n}];
""" + (
        k.fill_formula("init_a", "mat_a", str(n * n))
        + k.fill_formula("init_b", "mat_b", str(n * n), seed="0.36")
        # The whole benchmark is one constant-bound matrix multiply: a
        # SCoP whose inner loop is the one Parboil reduction Polly
        # finds (§6.1); icc and we find it too.
        + k.sgemm_kernel("sgemm_main", "mat_a", "mat_b", "mat_c", n)
        + k.axpy_const("beta_scale", "mat_a", "mat_c", n * n, alpha="0.1")
        + k.checksum("verify", "mat_c", "nvals")
    ) + """
int main(void) {
    nvals = 500;
    init_a(); init_b();
    sgemm_main(); beta_scale();
    print_double(verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "sgemm", "Parboil", source,
        Expectation(ours_scalars=1, icc=1, polly_reductions=1, scops=2,
                    reduction_scops=1),
        notes="the scalar-reduction runtime exception of §6.2",
    )


def _spmv() -> BenchmarkProgram:
    source = """
int nrows; int nnz;
double csr_vals[4096]; int csr_cols[4096]; double vec_x[1024];
double vec_y[1024];
""" + (
        k.fill_formula("init_vals", "csr_vals", "nnz")
        + k.fill_formula("init_x", "vec_x", "nrows", seed="0.58")
        + k.fill_keys("init_cols", "csr_cols", "nnz", "1024")
        # The sparse matvec gather: §3.1.1 condition 3 (affine reads)
        # fails, so even our detector reports nothing — as in Fig. 8b.
        + k.gather_sum("spmv_kernel", "vec_x", "csr_cols", "nnz")
        + k.scale_map("scale_y", "vec_x", "vec_y", "nrows")
        + k.checksum("verify", "vec_y", "nrows")
    ) + """
int main(void) {
    nrows = 800; nnz = 3000;
    init_vals(); init_x(); init_cols();
    double s = spmv_kernel();
    scale_y();
    print_double(s + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "spmv", "Parboil", source,
        Expectation(),
        notes="gather sums fail the affine-read condition for all tools",
    )


def _stencil() -> BenchmarkProgram:
    n = 26
    source = f"""
int nvals;
double grid_in[{n * n}]; double grid_out[{n * n}];
""" + (
        k.fill_formula("init_grid", "grid_in", str(n * n))
        + k.stencil2d("stencil_step_a", "grid_in", "grid_out", n,
                      coeff="0.24")
        + k.stencil2d("stencil_step_b", "grid_out", "grid_in", n,
                      coeff="0.26")
        + k.checksum("verify", "grid_in", "nvals")
    ) + """
int main(void) {
    nvals = 600;
    init_grid();
    stencil_step_a(); stencil_step_b();
    print_double(verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "stencil", "Parboil", source,
        Expectation(scops=2),
        notes="pure stencil: SCoPs without reductions",
    )


def _tpacf() -> BenchmarkProgram:
    source = """
int npoints; int nbins; int nvals;
double angles[16384]; double bin_bounds[64]; double hist[64];
""" + (
        k.fill_formula("init_angles", "angles", "npoints", seed="0.214")
        + """
void init_bins(void) {
    for (int b = 0; b < nbins; b++) {
        bin_bounds[b] = (b + 1.0) / nbins;
    }
}
"""
        # The angular-correlation histogram: bin via binary search in
        # the precomputed boundary array (§6.1: "the most interesting
        # example").
        + k.binsearch_histogram("correlate", "hist", "bin_bounds",
                                "angles", "npoints", "nbins")
        + k.checksum("verify", "angles", "nvals")
    ) + """
int main(void) {
    npoints = 16000; nbins = 60; nvals = 400;
    init_angles(); init_bins();
    correlate(); correlate(); correlate(); correlate();
    correlate(); correlate(); correlate(); correlate();
    print_double(hist[0] + hist[30] + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "tpacf", "Parboil", source,
        Expectation(ours_histograms=1),
        original_strategy="critical",
        notes="binary-search histogram; original uses a critical "
              "section and slows down (§6.3)",
    )


def build_suite() -> list[BenchmarkProgram]:
    """All eleven Parboil programs."""
    return [
        _bfs(), _cutcp(), _histo(), _lbm(), _mri_gridding(), _mri_q(),
        _sad(), _sgemm(), _spmv(), _stencil(), _tpacf(),
    ]
