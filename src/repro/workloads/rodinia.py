"""Rodinia benchmark corpus (19 programs).

Paper ground truth (Fig. 8c, Fig. 11, Fig. 14): reductions in 15 of 19
programs, particlefilter carrying the most (9); one histogram (kmeans'
membership count, whose parallelizing transform fails on the multiple
histogram updates in a nested loop, §6.3); icc finds 23; Polly finds
only leukocyte's reduction; 14 SCoPs across 7 programs.
"""

from __future__ import annotations

from . import kernels as k
from .spec import BenchmarkProgram, Expectation


def _backprop() -> BenchmarkProgram:
    source = """
int nunits;
double weights[1024]; double deltas[1024]; double hidden[1024];
""" + (
        k.fill_formula("init_w", "weights", "nunits")
        + k.fill_formula("init_d", "deltas", "nunits", seed="0.42")
        + k.fill_formula("init_h", "hidden", "nunits", seed="0.66")
        + k.plain_sum("sum_weights", "weights", "nunits")
        + k.dot_product("weighted_error", "weights", "deltas", "nunits")
        + k.fminmax_sum("max_delta", "deltas", "nunits", call="fmax")
        + k.checksum("verify", "hidden", "nunits")
    ) + """
int main(void) {
    nunits = 800;
    init_w(); init_d(); init_h();
    double s = sum_weights() + weighted_error() + max_delta();
    print_double(s + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "backprop", "Rodinia", source,
        Expectation(ours_scalars=3, icc=2),
    )


def _bfs_rodinia() -> BenchmarkProgram:
    source = """
int nnodes;
int visited[1024]; double node_cost[1024];
""" + (
        k.fill_formula("init_cost", "node_cost", "nnodes")
        + k.fill_keys("init_visited", "visited", "nnodes", "2")
        + """
// Count of visited nodes: an integer reduction.
int count_visited(void) {
    int count = 0;
    for (int i = 0; i < nnodes; i++) {
        if (visited[i] == 1) {
            count = count + 1;
        }
    }
    return count;
}
"""
        + k.fminmax_sum("max_cost", "node_cost", "nnodes", call="fmax")
        + k.checksum("verify", "node_cost", "nnodes")
    ) + """
int main(void) {
    nnodes = 900;
    init_cost(); init_visited();
    print_double(count_visited() + max_cost() + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "bfs", "Rodinia", source,
        Expectation(ours_scalars=2, icc=1),
    )


def _btree() -> BenchmarkProgram:
    source = """
int nkeys; int nqueries;
int keys[2048]; int queries[512]; int answers[512];
""" + (
        k.fill_keys("init_keys", "keys", "nkeys", "100000")
        + k.fill_keys("init_queries", "queries", "nqueries", "100000")
        + """
// Search queries against the sorted key array: while-loop searches,
// overwrite answers — no reductions.
void run_queries(void) {
    for (int q = 0; q < nqueries; q++) {
        int target = queries[q];
        int lo = 0;
        int hi = nkeys;
        while (lo < hi) {
            int mid = (lo + hi) / 2;
            if (keys[mid] < target) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        answers[q] = lo;
    }
}
"""
    ) + """
int main(void) {
    nkeys = 1500; nqueries = 300;
    init_keys(); init_queries();
    run_queries();
    print_int(answers[0] + answers[299]);
    return 0;
}
"""
    return BenchmarkProgram(
        "b+tree", "Rodinia", source,
        Expectation(),
        notes="search-only workload: no reductions (Fig. 8c)",
    )


def _cfd() -> BenchmarkProgram:
    source = """
int ncells;
double density[1024]; double momentum[1024]; double energy[1024];
""" + (
        k.fill_formula("init_density", "density", "ncells")
        + k.fill_formula("init_momentum", "momentum", "ncells", seed="0.48")
        + k.fill_formula("init_energy", "energy", "ncells", seed="0.12")
        + k.plain_sum("total_density", "density", "ncells")
        + k.math_sum("momentum_norm", "momentum", "ncells", call="sqrt")
        + k.fminmax_guarded_sum("bounded_energy", "energy", "ncells",
                                call="fmin")
        + k.checksum("verify", "energy", "ncells")
    ) + """
int main(void) {
    ncells = 900;
    init_density(); init_momentum(); init_energy();
    double s = total_density() + momentum_norm() + bounded_energy();
    print_double(s + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "cfd", "Rodinia", source,
        Expectation(ours_scalars=3, icc=2),
    )


def _heartwall() -> BenchmarkProgram:
    source = """
int npoints;
double frame[2048]; double tmpl[2048];
""" + (
        k.fill_formula("init_frame", "frame", "npoints")
        + k.fill_formula("init_template", "tmpl", "npoints", seed="0.56")
        + k.guarded_sum("correlation", "frame", "npoints", thresh="0.3")
        + k.fminmax_sum("peak_response", "tmpl", "npoints", call="fmax")
        + k.checksum("verify", "frame", "npoints")
    ) + """
int main(void) {
    npoints = 1000;
    init_frame(); init_template();
    print_double(correlation() + peak_response() + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "heartwall", "Rodinia", source,
        Expectation(ours_scalars=2, icc=1),
    )


def _hotspot() -> BenchmarkProgram:
    n = 24
    source = f"""
int nvals;
double temp[{n * n}]; double power[{n * n}];
""" + (
        k.fill_formula("init_temp", "temp", str(n * n))
        + k.fill_formula("init_power", "power", str(n * n), seed="0.71")
        + k.stencil2d("diffuse_step", "temp", "power", n, coeff="0.2")
        + k.stencil2d("power_step", "power", "temp", n, coeff="0.22")
        + k.checksum("verify", "temp", "nvals")
    ) + """
int main(void) {
    nvals = 500;
    init_temp(); init_power();
    diffuse_step(); power_step();
    print_double(verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "hotspot", "Rodinia", source,
        Expectation(scops=2),
        notes="pure thermal stencil: SCoPs, no reductions",
    )


def _hotspot3d() -> BenchmarkProgram:
    n = 20
    source = f"""
int nvals;
double temp3d[{n * n}]; double power3d[{n * n}]; double layer[1024];
double sink[1024];
""" + (
        k.fill_formula("init_temp", "temp3d", str(n * n))
        + k.fill_formula("init_layer", "layer", "nvals", seed="0.39")
        + k.fill_formula("init_sink", "sink", "nvals", seed="0.93")
        + k.stencil2d("diffuse_z0", "temp3d", "power3d", n, coeff="0.19")
        + k.stencil2d("diffuse_z1", "power3d", "temp3d", n, coeff="0.21")
        + k.plain_sum("layer_heat", "layer", "nvals")
        + k.dot_product("sink_transfer", "layer", "sink", "nvals")
        + k.checksum("verify", "temp3d", "nvals")
    ) + """
int main(void) {
    nvals = 400;
    init_temp(); init_layer(); init_sink();
    diffuse_z0(); diffuse_z1();
    print_double(layer_heat() + sink_transfer() + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "hotspot3D", "Rodinia", source,
        Expectation(ours_scalars=2, icc=2, scops=2),
    )


def _kmeans() -> BenchmarkProgram:
    # The §6.3 failure case: the point-assignment loop carries the
    # membership-count histogram (detected) *and* per-feature centre
    # accumulations in a nested loop (additional uncovered stores), so
    # the parallelizing transform must refuse the loop.
    source = """
int npoints; int nclusters; int nfeatures; int nvals;
double features[8192]; double clusters[256]; double csum[256];
double member_count[32]; double wcss_terms[2048];
int deltas[2048];

void assign_points(void) {
    for (int i = 0; i < npoints; i++) {
        int best = 0;
        double bestd = 1000000000.0;
        for (int c = 0; c < nclusters; c++) {
            double d = 0.0;
            for (int f = 0; f < nfeatures; f++) {
                double diff = features[i * nfeatures + f]
                    - clusters[c * nfeatures + f];
                d = d + diff * diff;
            }
            if (d < bestd) {
                bestd = d;
                best = c;
            }
        }
        for (int f = 0; f < nfeatures; f++) {
            csum[best * nfeatures + f] = csum[best * nfeatures + f]
                + features[i * nfeatures + f];
        }
        member_count[best] = member_count[best] + 1.0;
    }
}
""" + (
        k.fill_formula("init_features", "features", "npoints * nfeatures")
        + k.fill_formula("init_clusters", "clusters",
                         "nclusters * nfeatures", seed="0.83")
        + k.fill_formula("init_wcss", "wcss_terms", "nvals", seed="0.29")
        + k.fill_keys("init_deltas", "deltas", "nvals", "2")
        + k.plain_sum("wcss", "wcss_terms", "nvals")
        + k.count_if("delta_count", "wcss_terms", "nvals", thresh="0.5")
        + k.checksum("verify", "features", "nvals")
    ) + """
int main(void) {
    npoints = 600; nclusters = 8; nfeatures = 12; nvals = 600;
    init_features(); init_clusters(); init_wcss(); init_deltas();
    assign_points();
    print_double(member_count[0] + member_count[7] + wcss()
        + delta_count() + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "kmeans", "Rodinia", source,
        Expectation(ours_scalars=3, ours_histograms=1, icc=3),
        original_strategy="reduction",
        notes="membership histogram detected; transform fails on the "
              "nested centre updates (§6.3)",
    )


def _lavamd() -> BenchmarkProgram:
    source = """
int nparticles;
double charge[1024]; double distance[1024];
""" + (
        k.fill_formula("init_charge", "charge", "nparticles")
        + k.fill_formula("init_distance", "distance", "nparticles",
                         seed="0.27")
        + k.math_sum("potential", "charge", "nparticles", call="exp")
        + k.fminmax_sum("min_distance", "distance", "nparticles",
                        call="fmin")
        + k.checksum("verify", "distance", "nparticles")
    ) + """
int main(void) {
    nparticles = 900;
    init_charge(); init_distance();
    print_double(potential() + min_distance() + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "lavaMD", "Rodinia", source,
        Expectation(ours_scalars=2, icc=1),
    )


def _leukocyte() -> BenchmarkProgram:
    n = 24
    source = f"""
int nvals;
double gicov[576]; double img_grad[{n * n}]; double dilated[{n * n}];
double snake_energy[1024]; double cell_force[1024];
""" + (
        k.fill_formula("init_gicov", "gicov", str(24 * 24))
        + k.fill_formula("init_grad", "img_grad", str(n * n), seed="0.34")
        + k.fill_formula("init_energy", "snake_energy", "nvals", seed="0.88")
        + k.fill_formula("init_force", "cell_force", "nvals", seed="0.16")
        # The constant-bound GICOV sum: the one Rodinia reduction in a
        # SCoP, found by Polly (and by icc and by us).
        + k.plain_sum("gicov_score", "gicov", str(24 * 24))
        + k.plain_sum("snake_total", "snake_energy", "nvals")
        + k.fminmax_sum("max_gradient", "cell_force", "nvals", call="fmax")
        + k.fminmax_guarded_sum("bounded_force", "cell_force", "nvals",
                                call="fmin")
        # Two more constant-bound SCoPs without reductions.
        + k.stencil2d("dilate_image", "img_grad", "dilated", n,
                      coeff="0.25")
        + k.transpose_const("rotate_window", "img_grad", "dilated", n)
        + k.checksum("verify", "img_grad", "nvals")
    ) + """
int main(void) {
    nvals = 500;
    init_gicov(); init_grad(); init_energy(); init_force();
    dilate_image(); rotate_window();
    double s = gicov_score() + snake_total() + max_gradient()
        + bounded_force();
    print_double(s + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "leukocyte", "Rodinia", source,
        Expectation(ours_scalars=4, icc=2, polly_reductions=1, scops=3,
                    reduction_scops=1),
        notes="Polly's one Rodinia reduction (constant-bound GICOV sum)",
    )


def _lud() -> BenchmarkProgram:
    source = """
int matdim;
double lumat[4096]; double workrow[64]; double workcol[64];
""" + (
        k.fill_formula("init_mat", "lumat", "matdim * matdim")
        + """
// In-place factorization: the row updates read and write the same
// matrix, so every tool sees unresolvable dependences — no reductions.
void factorize(void) {
    for (int p = 0; p < matdim - 1; p++) {
        for (int i = p + 1; i < matdim; i++) {
            lumat[i * matdim + p] = lumat[i * matdim + p]
                / lumat[p * matdim + p];
            for (int j = p + 1; j < matdim; j++) {
                lumat[i * matdim + j] = lumat[i * matdim + j]
                    - lumat[i * matdim + p] * lumat[p * matdim + j];
            }
        }
    }
}
"""
        + k.stencil1d("smooth_row", "workrow", "workcol", 64)
        + k.axpy_const("scale_col", "workrow", "workcol", 64, alpha="0.4")
        + k.checksum("verify", "lumat", "matdim")
    ) + """
int main(void) {
    matdim = 24;
    init_mat();
    factorize(); smooth_row(); scale_col();
    print_double(verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "lud", "Rodinia", source,
        Expectation(scops=2),
        notes="in-place factorization: dependences block everything",
    )


def _mummergpu() -> BenchmarkProgram:
    source = """
int nqueries;
int match_len[1024]; double scores[1024];
""" + (
        k.fill_keys("init_matches", "match_len", "nqueries", "64")
        + k.fill_formula("init_scores", "scores", "nqueries", seed="0.62")
        + k.count_if("count_hits", "scores", "nqueries", thresh="0.8")
        + k.fminmax_sum("best_score", "scores", "nqueries", call="fmax")
        + k.checksum("verify", "scores", "nqueries")
    ) + """
int main(void) {
    nqueries = 900;
    init_matches(); init_scores();
    print_double(count_hits() + best_score() + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "mummergpu", "Rodinia", source,
        Expectation(ours_scalars=2, icc=1),
    )


def _myocyte() -> BenchmarkProgram:
    source = """
int nstates;
double state[512]; double rates[512];
""" + (
        k.fill_formula("init_state", "state", "nstates")
        + k.fill_formula("init_rates", "rates", "nstates", seed="0.74")
        + k.plain_sum("total_concentration", "state", "nstates")
        + k.fminmax_sum("peak_rate", "rates", "nstates", call="fmax")
        + k.seq_recurrence("integrate_step", "rates", "nstates")
        + k.checksum("verify", "state", "nstates")
    ) + """
int main(void) {
    nstates = 450;
    init_state(); init_rates();
    double s = total_concentration() + peak_rate()
        + integrate_step();
    print_double(s + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "myocyte", "Rodinia", source,
        Expectation(ours_scalars=2, icc=1),
        notes="the ODE recurrence is sequential and correctly ignored",
    )


def _nn() -> BenchmarkProgram:
    source = """
int nrecords;
double distances[2048];
""" + (
        k.fill_formula("init_dist", "distances", "nrecords")
        + k.ternary_max("nearest", "distances", "nrecords", greater=False)
        + k.checksum("verify", "distances", "nrecords")
    ) + """
int main(void) {
    nrecords = 1200;
    init_dist();
    print_double(nearest() + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "nn", "Rodinia", source,
        Expectation(ours_scalars=1, icc=1),
        notes="nearest-neighbour minimum via compare+select",
    )


def _nw() -> BenchmarkProgram:
    source = """
int seqlen;
double dp_table[4096]; double penalties[1024]; double refline[64];
double outline[64];
""" + (
        k.fill_formula("init_penalties", "penalties", "seqlen")
        + k.fill_formula("init_dp", "dp_table", "seqlen * seqlen")
        + """
// Wavefront DP: dp[i][j] depends on dp[i-1][j-1] — loop carried
// through memory, no reduction.
void fill_table(void) {
    for (int i = 1; i < seqlen; i++) {
        for (int j = 1; j < seqlen; j++) {
            double diag = dp_table[(i - 1) * seqlen + j - 1];
            double up = dp_table[(i - 1) * seqlen + j];
            double best = diag > up ? diag : up;
            dp_table[i * seqlen + j] = best + penalties[j];
        }
    }
}
"""
        + k.plain_sum("alignment_score", "penalties", "seqlen")
        + k.axpy_const("boundary_update", "refline", "outline", 64,
                       alpha="0.8")
        + k.checksum("verify", "dp_table", "seqlen")
    ) + """
int main(void) {
    seqlen = 40;
    init_penalties(); init_dp();
    fill_table(); boundary_update();
    print_double(alignment_score() + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "nw", "Rodinia", source,
        Expectation(ours_scalars=1, icc=1, scops=1),
    )


def _particlefilter() -> BenchmarkProgram:
    source = """
int nparticles;
double weights_pf[2048]; double xpos[2048]; double ypos[2048];
double likelihood[2048]; double noise[2048];
""" + (
        k.fill_formula("init_weights", "weights_pf", "nparticles")
        + k.fill_formula("init_x", "xpos", "nparticles", seed="0.15")
        + k.fill_formula("init_y", "ypos", "nparticles", seed="0.85")
        + k.fill_formula("init_like", "likelihood", "nparticles",
                         seed="0.49")
        + k.fill_formula("init_noise", "noise", "nparticles", seed="0.05")
        # Nine reductions — the Rodinia maximum (§6.1).  Three are
        # icc-friendly; six are hidden from icc by fmin/fmax.
        + k.plain_sum("weight_sum", "weights_pf", "nparticles")
        + k.dot_product("x_estimate", "xpos", "weights_pf", "nparticles")
        + k.count_if("effective_particles", "weights_pf", "nparticles",
                     thresh="0.5")
        + k.fminmax_sum("max_weight", "weights_pf", "nparticles",
                        call="fmax")
        + k.fminmax_sum("min_likelihood", "likelihood", "nparticles",
                        call="fmin")
        + k.fminmax_sum("max_noise", "noise", "nparticles", call="fmax")
        + k.fminmax_guarded_sum("bounded_x_var", "xpos", "nparticles",
                                call="fmin")
        + k.fminmax_guarded_sum("bounded_y_var", "ypos", "nparticles",
                                call="fmin")
        + k.fminmax_guarded_sum("resample_energy", "likelihood",
                                "nparticles", call="fmax")
        + k.checksum("verify", "weights_pf", "nparticles")
    ) + """
int main(void) {
    nparticles = 1000;
    init_weights(); init_x(); init_y(); init_like(); init_noise();
    double s = weight_sum() + x_estimate() + effective_particles()
        + max_weight() + min_likelihood() + max_noise()
        + bounded_x_var() + bounded_y_var() + resample_energy();
    print_double(s + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "particlefilter", "Rodinia", source,
        Expectation(ours_scalars=9, icc=3),
        notes="the Rodinia maximum: 9 reductions",
    )


def _pathfinder() -> BenchmarkProgram:
    source = """
int ncols;
double wall[4096]; double dst_row[1024]; double src_row[1024];
double edge_a[64]; double edge_b[64];
""" + (
        k.fill_formula("init_wall", "wall", "ncols")
        + k.fill_formula("init_src", "src_row", "ncols", seed="0.68")
        + """
// Dynamic-programming min-path: the writes overwrite dst_row (no
// read-modify-write) and fmin blocks icc anyway — no reductions.
void path_step(void) {
    for (int j = 1; j < ncols - 1; j++) {
        double left = src_row[j - 1];
        double mid = src_row[j];
        double right = src_row[j + 1];
        dst_row[j] = wall[j] + fmin(left, fmin(mid, right));
    }
}
"""
        + k.stencil1d("border_smooth", "edge_a", "edge_b", 64)
        + k.stencil1d("border_relax", "edge_b", "edge_a", 64,
                      coeff="0.25")
        + k.checksum("verify", "dst_row", "ncols")
    ) + """
int main(void) {
    ncols = 800;
    init_wall(); init_src();
    path_step();
    border_smooth(); border_relax();
    print_double(verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "pathfinder", "Rodinia", source,
        Expectation(scops=2),
        notes="DP overwrite, not a reduction",
    )


def _srad() -> BenchmarkProgram:
    n = 22
    source = f"""
int nvals;
double image[{n * n}]; double coefc[{n * n}]; double qsqr[1024];
""" + (
        k.fill_formula("init_image", "image", str(n * n))
        + k.fill_formula("init_qsqr", "qsqr", "nvals", seed="0.54")
        + k.stencil2d("diffusion_north", "image", "coefc", n, coeff="0.23")
        + k.stencil2d("diffusion_south", "coefc", "image", n, coeff="0.27")
        + k.plain_sum("mean_intensity", "qsqr", "nvals")
        + k.fminmax_sum("max_gradient_srad", "qsqr", "nvals", call="fmax")
        + k.checksum("verify", "image", "nvals")
    ) + """
int main(void) {
    nvals = 400;
    init_image(); init_qsqr();
    diffusion_north(); diffusion_south();
    print_double(mean_intensity() + max_gradient_srad() + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "srad", "Rodinia", source,
        Expectation(ours_scalars=2, icc=1, scops=2),
    )


def _streamcluster() -> BenchmarkProgram:
    source = """
int npoints_sc;
double costs[2048]; double point_weight[2048];
""" + (
        k.fill_formula("init_costs", "costs", "npoints_sc")
        + k.fill_formula("init_pw", "point_weight", "npoints_sc",
                         seed="0.91")
        + k.guarded_sum("open_cost", "costs", "npoints_sc", thresh="0.4")
        + k.fminmax_guarded_sum("assign_cost", "point_weight",
                                "npoints_sc", call="fmin")
        + k.checksum("verify", "costs", "npoints_sc")
    ) + """
int main(void) {
    npoints_sc = 950;
    init_costs(); init_pw();
    print_double(open_cost() + assign_cost() + verify());
    return 0;
}
"""
    return BenchmarkProgram(
        "streamcluster", "Rodinia", source,
        Expectation(ours_scalars=2, icc=1),
    )


def build_suite() -> list[BenchmarkProgram]:
    """All nineteen Rodinia programs."""
    return [
        _backprop(), _bfs_rodinia(), _btree(), _cfd(), _heartwall(),
        _hotspot(), _hotspot3d(), _kmeans(), _lavamd(), _leukocyte(),
        _lud(), _mummergpu(), _myocyte(), _nn(), _nw(),
        _particlefilter(), _pathfinder(), _srad(), _streamcluster(),
    ]
