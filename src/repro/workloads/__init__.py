"""Synthetic benchmark corpus: NAS, Parboil and Rodinia reconstructions."""

from .corpus import (
    FIGURE15_BENCHMARKS,
    SUITE_NAMES,
    all_programs,
    clear_cache,
    corpus_keys,
    program,
    suite,
)
from .spec import BenchmarkProgram, Expectation

__all__ = [
    "BenchmarkProgram",
    "Expectation",
    "SUITE_NAMES",
    "FIGURE15_BENCHMARKS",
    "suite",
    "all_programs",
    "corpus_keys",
    "program",
    "clear_cache",
]
