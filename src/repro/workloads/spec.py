"""Benchmark corpus schema.

Each of the paper's 40 benchmark programs (NAS, Parboil, Rodinia) is
reconstructed as a mini-C program whose *analysable features* match
what the paper reports: the number and kind of reductions each tool
should find, the SCoP population, and (for the performance subset) the
runtime profile.  :class:`Expectation` records the per-tool ground
truth; the test suite and the evaluation harness assert against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend import compile_source
from ..ir.module import Module


@dataclass(frozen=True)
class Expectation:
    """Ground-truth per-tool detection counts for one benchmark."""

    #: Scalar reductions our constraint-based detector finds.
    ours_scalars: int = 0
    #: Histogram reductions our detector finds.
    ours_histograms: int = 0
    #: Scalar reductions the icc model reports (never histograms).
    icc: int = 0
    #: Reductions the Polly model finds inside SCoPs.
    polly_reductions: int = 0
    #: Total SCoPs Polly reports (Figures 9-11).
    scops: int = 0
    #: SCoPs carrying a reduction.
    reduction_scops: int = 0

    @property
    def ours_total(self) -> int:
        """All reductions our detector finds."""
        return self.ours_scalars + self.ours_histograms


@dataclass
class BenchmarkProgram:
    """One corpus program with its ground truth."""

    name: str
    suite: str
    source: str
    expectation: Expectation
    #: Strategy of the original hand-parallelized version, for the
    #: Figure 15 comparison: "coarse", "bucketed", "atomic",
    #: "critical" or "reduction".
    original_strategy: str | None = None
    #: Which paper observation(s) this program encodes.
    notes: str = ""
    _module: Module | None = field(default=None, repr=False, compare=False)

    def compile(self) -> Module:
        """Compile (and cache) the program to SSA IR."""
        if self._module is None:
            self._module = compile_source(self.source, self.name)
        return self._module

    def fresh_module(self) -> Module:
        """Compile without using the cache (for mutation-safe runs)."""
        return compile_source(self.source, self.name)
