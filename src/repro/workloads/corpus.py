"""Corpus registry: all 40 benchmark programs by suite."""

from __future__ import annotations

from . import nas, parboil, rodinia
from .spec import BenchmarkProgram

#: Suites in the order of the paper's figures.
SUITE_NAMES = ("NAS", "Parboil", "Rodinia")

#: Benchmarks with a Figure 15 speedup experiment.
FIGURE15_BENCHMARKS = ("EP", "IS", "histo", "tpacf", "kmeans")

_CACHE: dict[str, list[BenchmarkProgram]] = {}

#: Lookup index built once from the suite lists: ``(name, suite)`` to
#: the program, plus ``name`` alone to its first match in suite order
#: (suites may reuse names, e.g. bfs).  Invalidated by
#: :func:`clear_cache` together with the suite cache.
_INDEX: dict[tuple[str, str | None], BenchmarkProgram] | None = None


def suite(name: str) -> list[BenchmarkProgram]:
    """The programs of one suite (cached)."""
    if name not in _CACHE:
        builders = {
            "NAS": nas.build_suite,
            "Parboil": parboil.build_suite,
            "Rodinia": rodinia.build_suite,
        }
        _CACHE[name] = builders[name]()
    return _CACHE[name]


def all_programs() -> list[BenchmarkProgram]:
    """All 40 corpus programs."""
    programs: list[BenchmarkProgram] = []
    for name in SUITE_NAMES:
        programs.extend(suite(name))
    return programs


def corpus_keys() -> list[tuple[str, str]]:
    """``(name, suite)`` of every corpus program, in canonical order.

    The pipeline shards these keys across workers and merges results
    back into this order, so parallel runs are deterministic.
    """
    return [(p.name, p.suite) for p in all_programs()]


def _index() -> dict[tuple[str, str | None], BenchmarkProgram]:
    global _INDEX
    if _INDEX is None:
        index: dict[tuple[str, str | None], BenchmarkProgram] = {}
        for candidate in all_programs():
            index[(candidate.name, candidate.suite)] = candidate
            # First match in suite order wins the suite-less lookup.
            index.setdefault((candidate.name, None), candidate)
        _INDEX = index
    return _INDEX


def program(name: str, suite_name: str | None = None) -> BenchmarkProgram:
    """Look one program up by name (suites may reuse names, e.g. bfs).

    O(1): programs are indexed by ``(name, suite)`` once rather than
    scanning :func:`all_programs` linearly per lookup.
    """
    try:
        return _index()[(name, suite_name)]
    except KeyError:
        raise KeyError(f"no benchmark named {name!r}") from None


def clear_cache() -> None:
    """Drop memoised programs (tests that mutate modules use this)."""
    global _INDEX
    _CACHE.clear()
    _INDEX = None
