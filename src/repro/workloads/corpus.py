"""Corpus registry: all 40 benchmark programs by suite."""

from __future__ import annotations

from . import nas, parboil, rodinia
from .spec import BenchmarkProgram

#: Suites in the order of the paper's figures.
SUITE_NAMES = ("NAS", "Parboil", "Rodinia")

#: Benchmarks with a Figure 15 speedup experiment.
FIGURE15_BENCHMARKS = ("EP", "IS", "histo", "tpacf", "kmeans")

_CACHE: dict[str, list[BenchmarkProgram]] = {}


def suite(name: str) -> list[BenchmarkProgram]:
    """The programs of one suite (cached)."""
    if name not in _CACHE:
        builders = {
            "NAS": nas.build_suite,
            "Parboil": parboil.build_suite,
            "Rodinia": rodinia.build_suite,
        }
        _CACHE[name] = builders[name]()
    return _CACHE[name]


def all_programs() -> list[BenchmarkProgram]:
    """All 40 corpus programs."""
    programs: list[BenchmarkProgram] = []
    for name in SUITE_NAMES:
        programs.extend(suite(name))
    return programs


def program(name: str, suite_name: str | None = None) -> BenchmarkProgram:
    """Look one program up by name (suites may reuse names, e.g. bfs)."""
    for candidate in all_programs():
        if candidate.name == name:
            if suite_name is None or candidate.suite == suite_name:
                return candidate
    raise KeyError(f"no benchmark named {name!r}")


def clear_cache() -> None:
    """Drop memoised programs (tests that mutate modules use this)."""
    _CACHE.clear()
