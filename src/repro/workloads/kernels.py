"""Parameterized mini-C kernel generators for the benchmark corpus.

Each generator emits one function whose *analysable features* place it
in a known cell of the detection matrix (our detector / icc model /
Polly model).  The comments on each generator state the intended
verdicts; the corpus tests assert them benchmark by benchmark.

Conventions driving the tool verdicts:

* loop bounds that are **mutable globals** (``nvals`` etc.) are hoisted
  by LICM, so our detector and icc accept them, but they are runtime
  values — never Polly parameters ("not statically known iteration
  spaces", §6.1);
* loop bounds that are **literals** make the nest a Polly SCoP
  candidate (used only where the paper says Polly succeeds);
* ``fmin``/``fmax`` calls are pure for us but unknown to icc (§6.1,
  cutcp);
* flattened accesses ``a[i*cols + j]`` with a parametric ``cols``
  break Polly's constant-coefficient affinity (delinearization);
* indirect accesses break icc and Polly; only the histogram idiom
  accepts them.
"""

from __future__ import annotations


def plain_sum(fname: str, arr: str, bound: str) -> str:
    """Sum over an array.  ours ✓, icc ✓; Polly ✓ iff ``bound`` is a
    literal (then the function is a SCoP with a reduction)."""
    return f"""
double {fname}(void) {{
    double s = 0.0;
    for (int i = 0; i < {bound}; i++) {{
        s = s + {arr}[i];
    }}
    return s;
}}
"""


def guarded_sum(fname: str, arr: str, bound: str, thresh: str = "0.5") -> str:
    """Conditionally guarded sum.  ours ✓, icc ✓, Polly ✗ (the guard is
    data dependent, so the region is not static control)."""
    return f"""
double {fname}(void) {{
    double s = 0.0;
    for (int i = 0; i < {bound}; i++) {{
        double v = {arr}[i];
        if (v > {thresh}) {{
            s = s + v;
        }}
    }}
    return s;
}}
"""


def math_sum(fname: str, arr: str, bound: str, call: str = "sqrt") -> str:
    """Sum through a math call icc knows how to vectorize.
    ours ✓, icc ✓, Polly ✗ (call breaks static control)."""
    return f"""
double {fname}(void) {{
    double s = 0.0;
    for (int i = 0; i < {bound}; i++) {{
        s = s + {call}(fabs({arr}[i]) + 1.0);
    }}
    return s;
}}
"""


def fminmax_sum(fname: str, arr: str, bound: str, call: str = "fmax") -> str:
    """Min/max reduction via ``fmin``/``fmax``.  ours ✓ (the intrinsic
    is known pure); icc ✗ (unknown side effects, §6.1); Polly ✗."""
    return f"""
double {fname}(void) {{
    double m = {arr}[0];
    for (int i = 0; i < {bound}; i++) {{
        m = {call}(m, {arr}[i]);
    }}
    return m;
}}
"""


def fminmax_guarded_sum(fname: str, arr: str, bound: str,
                        call: str = "fmin") -> str:
    """Guarded sum that also evaluates ``fmin``/``fmax`` — the cutcp
    pattern: the call blocks icc even though the accumulator itself is
    a plain sum.  ours ✓, icc ✗, Polly ✗."""
    return f"""
double {fname}(void) {{
    double s = 0.0;
    for (int i = 0; i < {bound}; i++) {{
        double v = {call}({arr}[i], 1.0);
        if (v > 0.0) {{
            s = s + v * v;
        }}
    }}
    return s;
}}
"""


def ternary_max(fname: str, arr: str, bound: str, greater: bool = True) -> str:
    """Min/max via compare+select (no call).  ours ✓, icc ✓, Polly ✗."""
    op = ">" if greater else "<"
    return f"""
double {fname}(void) {{
    double m = {arr}[0];
    for (int i = 0; i < {bound}; i++) {{
        m = {arr}[i] {op} m ? {arr}[i] : m;
    }}
    return m;
}}
"""


def product_reduction(fname: str, arr: str, bound: str) -> str:
    """Product reduction.  ours ✓, icc ✓, Polly ✗ (global bound)."""
    return f"""
double {fname}(void) {{
    double p = 1.0;
    for (int i = 0; i < {bound}; i++) {{
        p = p * (1.0 + 0.000001 * {arr}[i]);
    }}
    return p;
}}
"""


def dot_product(fname: str, a: str, b: str, bound: str) -> str:
    """Dot product of two arrays.  ours ✓, icc ✓, Polly ✗."""
    return f"""
double {fname}(void) {{
    double s = 0.0;
    for (int i = 0; i < {bound}; i++) {{
        s = s + {a}[i] * {b}[i];
    }}
    return s;
}}
"""


def nested_flat_sum(fname: str, arr: str, rows: str, cols: str) -> str:
    """Sum over a flattened 2-D array with parametric pitch.  Detected
    at the innermost loop: ours ✓ (1), icc ✓ (1); Polly ✗ — the
    ``i*cols`` term has a symbolic coefficient (flat-array
    delinearization failure, §6.1)."""
    return f"""
double {fname}(void) {{
    double s = 0.0;
    for (int i = 0; i < {rows}; i++) {{
        for (int j = 0; j < {cols}; j++) {{
            s = s + {arr}[i * {cols} + j];
        }}
    }}
    return s;
}}
"""


def strided_sum(fname: str, arr: str, bound: str, stride: str) -> str:
    """Sum with a runtime stride.  ours ✓ (affine with loop-invariant
    coefficient), icc ✓, Polly ✗ (symbolic coefficient)."""
    return f"""
double {fname}(void) {{
    double s = 0.0;
    for (int i = 0; i < {bound}; i++) {{
        s = s + {arr}[i * {stride}];
    }}
    return s;
}}
"""


def gather_sum(fname: str, val: str, idx: str, bound: str) -> str:
    """Gather (indirection) sum, the spmv pattern.  Nobody detects it:
    ours ✗ (scalar reductions require affine reads, §3.1.1 cond. 3),
    icc ✗ (assumed dependence), Polly ✗."""
    return f"""
double {fname}(void) {{
    double s = 0.0;
    for (int i = 0; i < {bound}; i++) {{
        s = s + {val}[{idx}[i]];
    }}
    return s;
}}
"""


def count_if(fname: str, arr: str, bound: str, thresh: str = "0.0") -> str:
    """Conditional counter (integer sum).  ours ✓, icc ✓, Polly ✗."""
    return f"""
int {fname}(void) {{
    int count = 0;
    for (int i = 0; i < {bound}; i++) {{
        if ({arr}[i] > {thresh}) {{
            count = count + 1;
        }}
    }}
    return count;
}}
"""


def seq_recurrence(fname: str, arr: str, bound: str) -> str:
    """First-order linear recurrence — NOT a reduction (the update
    mixes * and +, so no single associative operator).  Nobody may
    report it."""
    return f"""
double {fname}(void) {{
    double s = 0.0;
    for (int i = 0; i < {bound}; i++) {{
        s = 0.5 * s + {arr}[i];
    }}
    return s;
}}
"""


def checksum(fname: str, arr: str, bound: str) -> str:
    """Verification checksum used by mains: deliberately written as a
    non-associative recurrence so it never counts as a reduction."""
    return seq_recurrence(fname, arr, bound)


def scale_map(fname: str, src: str, dst: str, bound: str,
              factor: str = "2.0") -> str:
    """Element-wise map, a parallel write but no reduction.  Global
    bound keeps it out of the SCoP population."""
    return f"""
void {fname}(void) {{
    for (int i = 0; i < {bound}; i++) {{
        {dst}[i] = {factor} * {src}[i];
    }}
}}
"""


def fill_formula(fname: str, arr: str, bound: str, seed: str = "0.618") -> str:
    """Deterministic array initialisation (the ``fmod`` call keeps the
    loop out of every detector's and Polly's scope)."""
    return f"""
void {fname}(void) {{
    for (int i = 0; i < {bound}; i++) {{
        {arr}[i] = fmod({seed} * (i + 1) + 0.311, 1.0);
    }}
}}
"""


def fill_rand(fname: str, arr: str, bound: str, scale: str = "1.0") -> str:
    """Pseudo-random initialisation via the impure ``rand`` intrinsic."""
    return f"""
void {fname}(void) {{
    for (int i = 0; i < {bound}; i++) {{
        {arr}[i] = {scale} * (rand() % 1000) / 1000.0;
    }}
}}
"""


def fill_keys(fname: str, arr: str, bound: str, buckets: str) -> str:
    """Integer key initialisation into a bounded range."""
    return f"""
void {fname}(void) {{
    for (int i = 0; i < {bound}; i++) {{
        {arr}[i] = (i * 7 + i / 3) % {buckets};
    }}
}}
"""


# -- histograms ---------------------------------------------------------------


def direct_histogram(fname: str, hist: str, keys: str, bound: str) -> str:
    """The IS pattern: ``hist[keys[i]]++``.  ours ✓ (histogram);
    icc ✗, Polly ✗ (indirect)."""
    return f"""
void {fname}(void) {{
    for (int i = 0; i < {bound}; i++) {{
        {hist}[{keys}[i]] = {hist}[{keys}[i]] + 1;
    }}
}}
"""


def image_histogram(fname: str, hist: str, img: str, bound: str,
                    bins: str) -> str:
    """The histo pattern: bin computed from pixel data."""
    return f"""
void {fname}(void) {{
    for (int i = 0; i < {bound}; i++) {{
        int bin = (int) ({img}[i] * ({bins} - 1));
        {hist}[bin] = {hist}[bin] + 1;
    }}
}}
"""


def binsearch_histogram(fname: str, hist: str, binb: str, data: str,
                        bound: str, nbins: str) -> str:
    """The tpacf pattern: the bin index comes from a binary search in
    an auxiliary array (§6.1: "the most interesting example")."""
    return f"""
void {fname}(void) {{
    for (int i = 0; i < {bound}; i++) {{
        double d = {data}[i];
        int lo = 0;
        int hi = {nbins};
        while (lo < hi) {{
            int mid = (lo + hi) / 2;
            if (d < {binb}[mid]) {{
                hi = mid;
            }} else {{
                lo = mid + 1;
            }}
        }}
        {hist}[lo] = {hist}[lo] + 1.0;
    }}
}}
"""


# -- SCoP material --------------------------------------------------------------


def sgemm_kernel(fname: str, a: str, b: str, c: str, n: int) -> str:
    """Dense matrix multiply with literal dimensions: a SCoP whose
    inner loop is a reduction.  ours ✓, icc ✓, Polly ✓ (the one Parboil
    reduction SCoP, §6.1)."""
    return f"""
void {fname}(void) {{
    for (int i = 0; i < {n}; i++) {{
        for (int j = 0; j < {n}; j++) {{
            double s = 0.0;
            for (int k = 0; k < {n}; k++) {{
                s = s + {a}[i * {n} + k] * {b}[k * {n} + j];
            }}
            {c}[i * {n} + j] = s;
        }}
    }}
}}
"""


def midnest_array_reduction(fname: str, src: str, acc: str, d1: int,
                            d2: int, d3: int) -> str:
    """The SP/BT ``rms`` pattern (§6.1): a perfectly nested loop where
    the reduction is carried by the outer loops and the innermost
    iterator indexes the accumulator array.  Polly ✓ (affine array
    reduction in a SCoP); ours ✗ (the reduction loop is not the
    innermost loop); icc ✗ (mid-nest reduction iterator)."""
    return f"""
void {fname}(void) {{
    for (int k = 0; k < {d1}; k++) {{
        for (int j = 0; j < {d2}; j++) {{
            for (int m = 0; m < {d3}; m++) {{
                double add = {src}[(k * {d2} + j) * {d3} + m];
                {acc}[m] = {acc}[m] + add * add;
            }}
        }}
    }}
}}
"""


def stencil2d(fname: str, src: str, dst: str, n: int,
              coeff: str = "0.25") -> str:
    """Out-of-place 2-D stencil with literal dimensions — a SCoP with
    no reduction (the bulk of Polly's SCoPs, §6.1)."""
    return f"""
void {fname}(void) {{
    for (int i = 1; i < {n} - 1; i++) {{
        for (int j = 1; j < {n} - 1; j++) {{
            {dst}[i * {n} + j] = {coeff} * ({src}[i * {n} + j - 1]
                + {src}[i * {n} + j + 1]
                + {src}[(i - 1) * {n} + j]
                + {src}[(i + 1) * {n} + j]);
        }}
    }}
}}
"""


def stencil1d(fname: str, src: str, dst: str, n: int,
              coeff: str = "0.3333") -> str:
    """Out-of-place 1-D three-point stencil — a SCoP, no reduction."""
    return f"""
void {fname}(void) {{
    for (int i = 1; i < {n} - 1; i++) {{
        {dst}[i] = {coeff} * ({src}[i - 1] + {src}[i] + {src}[i + 1]);
    }}
}}
"""


def axpy_const(fname: str, x: str, y: str, n: int,
               alpha: str = "1.5") -> str:
    """Literal-bound vector update — a SCoP, no reduction."""
    return f"""
void {fname}(void) {{
    for (int i = 0; i < {n}; i++) {{
        {y}[i] = {y}[i] + {alpha} * {x}[i];
    }}
}}
"""


def transpose_const(fname: str, src: str, dst: str, n: int) -> str:
    """Literal-bound matrix transpose — a SCoP, no reduction."""
    return f"""
void {fname}(void) {{
    for (int i = 0; i < {n}; i++) {{
        for (int j = 0; j < {n}; j++) {{
            {dst}[j * {n} + i] = {src}[i * {n} + j];
        }}
    }}
}}
"""


def blocked_abs_diff(fname: str, cur: str, ref: str, out: str,
                     blocks: str, width: str) -> str:
    """The sad pattern: per-position accumulation indexed by the inner
    iterator.  The store index varies with the inner loop, so it is a
    parallel write, not a histogram — nobody reports a reduction."""
    return f"""
void {fname}(void) {{
    for (int b = 0; b < {blocks}; b++) {{
        for (int j = 0; j < {width}; j++) {{
            double d = {cur}[b * {width} + j] - {ref}[b * {width} + j];
            {out}[b * {width} + j] = {out}[b * {width} + j] + fabs(d);
        }}
    }}
}}
"""
