"""Recursive-descent parser for the mini-C language."""

from __future__ import annotations

from .ast_nodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    CastExpr,
    Continue,
    CType,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FuncDef,
    GlobalVar,
    If,
    IncDec,
    Index,
    IntLit,
    Param,
    Program,
    Return,
    Stmt,
    Ternary,
    Unary,
    Var,
    VarDecl,
    While,
)
from .lexer import Token, tokenize

#: Type keywords; ``long`` folds to ``int`` and ``float`` to ``double``.
_TYPE_KEYWORDS = {"int": "int", "long": "int", "float": "double",
                  "double": "double", "void": "void"}

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=")


class ParseError(Exception):
    """Raised on syntax errors with source position."""

    def __init__(self, message: str, token: Token):
        super().__init__(f"{token.line}:{token.column}: {message} "
                         f"(got {token.kind} {token.text!r})")
        self.token = token


class Parser:
    """Token-stream parser producing a :class:`Program`."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.position = 0

    # -- token helpers ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def expect_op(self, text: str) -> Token:
        if not self.current.is_op(text):
            raise ParseError(f"expected {text!r}", self.current)
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind != "ident":
            raise ParseError("expected identifier", self.current)
        return self.advance()

    def at_type(self, offset: int = 0) -> bool:
        token = self.peek(offset) if offset else self.current
        return token.kind == "keyword" and token.text in _TYPE_KEYWORDS

    # -- top level -----------------------------------------------------------

    def parse_program(self) -> Program:
        """Parse a full translation unit."""
        globals_: list[GlobalVar] = []
        functions: list[FuncDef] = []
        while self.current.kind != "eof":
            is_const = False
            if self.current.is_keyword("const"):
                is_const = True
                self.advance()
            if not self.at_type():
                raise ParseError("expected declaration", self.current)
            base = self.parse_base_type()
            name = self.expect_ident()
            if self.current.is_op("("):
                if is_const:
                    raise ParseError("const function", name)
                functions.append(self.parse_function_rest(base, name))
            else:
                globals_.append(self.parse_global_rest(base, name, is_const))
        return Program(globals_, functions)

    def parse_base_type(self) -> CType:
        keyword = self.advance()
        base = _TYPE_KEYWORDS[keyword.text]
        pointer = 0
        while self.current.is_op("*"):
            pointer += 1
            self.advance()
        return CType(base, pointer)

    def parse_global_rest(
        self, base: CType, name: Token, is_const: bool
    ) -> GlobalVar:
        dims: list[Expr] = []
        while self.current.is_op("["):
            self.advance()
            dims.append(self.parse_expr())
            self.expect_op("]")
        init = None
        if self.current.is_op("="):
            self.advance()
            init = self.parse_expr()
        self.expect_op(";")
        ctype = CType(base.base, base.pointer, tuple(dims))
        return GlobalVar(name.text, ctype, init, is_const, line=name.line)

    def parse_function_rest(self, base: CType, name: Token) -> FuncDef:
        self.expect_op("(")
        params: list[Param] = []
        if self.current.is_keyword("void") and self.peek().is_op(")"):
            self.advance()
        elif not self.current.is_op(")"):
            while True:
                param_type = self.parse_base_type()
                param_name = self.expect_ident()
                while self.current.is_op("["):
                    # ``double a[]`` and ``double a[N]`` parameters decay
                    # to pointers, as in C.
                    self.advance()
                    if not self.current.is_op("]"):
                        self.parse_expr()
                    self.expect_op("]")
                    param_type = CType(
                        param_type.base, param_type.pointer + 1
                    )
                params.append(Param(param_name.text, param_type))
                if self.current.is_op(","):
                    self.advance()
                    continue
                break
        self.expect_op(")")
        if self.current.is_op(";"):
            self.advance()
            body = None
        else:
            body = self.parse_block()
        return FuncDef(name.text, base, params, body, line=name.line)

    # -- statements ----------------------------------------------------------

    def parse_block(self) -> Block:
        start = self.expect_op("{")
        statements: list[Stmt] = []
        while not self.current.is_op("}"):
            if self.current.kind == "eof":
                raise ParseError("unterminated block", self.current)
            statements.append(self.parse_statement())
        self.expect_op("}")
        return Block(statements, line=start.line)

    def parse_statement(self) -> Stmt:
        token = self.current
        if token.is_op("{"):
            return self.parse_block()
        if token.is_keyword("if"):
            return self.parse_if()
        if token.is_keyword("for"):
            return self.parse_for()
        if token.is_keyword("while"):
            return self.parse_while()
        if token.is_keyword("return"):
            self.advance()
            value = None
            if not self.current.is_op(";"):
                value = self.parse_expr()
            self.expect_op(";")
            return Return(value, line=token.line)
        if token.is_keyword("break"):
            self.advance()
            self.expect_op(";")
            return Break(line=token.line)
        if token.is_keyword("continue"):
            self.advance()
            self.expect_op(";")
            return Continue(line=token.line)
        if token.is_op(";"):
            self.advance()
            return Block([], line=token.line)
        statement = self.parse_simple_statement()
        self.expect_op(";")
        return statement

    def parse_if(self) -> If:
        token = self.advance()
        self.expect_op("(")
        cond = self.parse_expr()
        self.expect_op(")")
        then = self.parse_statement()
        orelse = None
        if self.current.is_keyword("else"):
            self.advance()
            orelse = self.parse_statement()
        return If(cond, then, orelse, line=token.line)

    def parse_for(self) -> For:
        token = self.advance()
        self.expect_op("(")
        init = None
        if not self.current.is_op(";"):
            init = self.parse_simple_statement()
        self.expect_op(";")
        cond = None
        if not self.current.is_op(";"):
            cond = self.parse_expr()
        self.expect_op(";")
        step = None
        if not self.current.is_op(")"):
            step = self.parse_simple_statement()
        self.expect_op(")")
        body = self.parse_statement()
        return For(init, cond, step, body, line=token.line)

    def parse_while(self) -> While:
        token = self.advance()
        self.expect_op("(")
        cond = self.parse_expr()
        self.expect_op(")")
        body = self.parse_statement()
        return While(cond, body, line=token.line)

    def parse_simple_statement(self) -> Stmt:
        """Declaration, assignment, increment or bare expression."""
        token = self.current
        if self.current.is_keyword("const") or self.at_type():
            if self.current.is_keyword("const"):
                self.advance()
            base = self.parse_base_type()
            name = self.expect_ident()
            dims: list[Expr] = []
            while self.current.is_op("["):
                self.advance()
                dims.append(self.parse_expr())
                self.expect_op("]")
            init = None
            if self.current.is_op("="):
                self.advance()
                init = self.parse_expr()
            ctype = CType(base.base, base.pointer, tuple(dims))
            return VarDecl(name.text, ctype, init, line=token.line)
        expr = self.parse_expr()
        for op in _ASSIGN_OPS:
            if self.current.is_op(op):
                self.advance()
                value = self.parse_expr()
                _require_lvalue(expr, self.current)
                return Assign(expr, op, value, line=token.line)
        if self.current.is_op("++") or self.current.is_op("--"):
            op_token = self.advance()
            _require_lvalue(expr, op_token)
            return IncDec(expr, op_token.text, line=token.line)
        return ExprStmt(expr, line=token.line)

    # -- expressions (precedence climbing) ----------------------------------

    def parse_expr(self) -> Expr:
        """Parse a full (non-assignment) expression."""
        return self.parse_ternary()

    def parse_ternary(self) -> Expr:
        cond = self.parse_binary(0)
        if self.current.is_op("?"):
            token = self.advance()
            if_true = self.parse_expr()
            self.expect_op(":")
            if_false = self.parse_ternary()
            return Ternary(cond, if_true, if_false, line=token.line)
        return cond

    _LEVELS: list[tuple[str, ...]] = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def parse_binary(self, level: int) -> Expr:
        if level >= len(self._LEVELS):
            return self.parse_unary()
        expr = self.parse_binary(level + 1)
        ops = self._LEVELS[level]
        while self.current.kind == "op" and self.current.text in ops:
            token = self.advance()
            rhs = self.parse_binary(level + 1)
            expr = Binary(token.text, expr, rhs, line=token.line)
        return expr

    def parse_unary(self) -> Expr:
        token = self.current
        if token.kind == "op" and token.text in ("-", "!", "~"):
            self.advance()
            operand = self.parse_unary()
            return Unary(token.text, operand, line=token.line)
        if token.is_op("(") and self.at_type(1):
            self.advance()
            target = self.parse_base_type()
            self.expect_op(")")
            operand = self.parse_unary()
            return CastExpr(target, operand, line=token.line)
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while self.current.is_op("["):
            indices: list[Expr] = []
            while self.current.is_op("["):
                self.advance()
                indices.append(self.parse_expr())
                self.expect_op("]")
            expr = Index(expr, indices, line=self.current.line)
        return expr

    def parse_primary(self) -> Expr:
        token = self.current
        if token.kind == "int":
            self.advance()
            return IntLit(int(token.text), line=token.line)
        if token.kind == "float":
            self.advance()
            return FloatLit(float(token.text), line=token.line)
        if token.kind == "ident":
            self.advance()
            if self.current.is_op("("):
                self.advance()
                args: list[Expr] = []
                if not self.current.is_op(")"):
                    while True:
                        args.append(self.parse_expr())
                        if self.current.is_op(","):
                            self.advance()
                            continue
                        break
                self.expect_op(")")
                return Call(token.text, args, line=token.line)
            return Var(token.text, line=token.line)
        if token.is_op("("):
            self.advance()
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        raise ParseError("expected expression", token)


def _require_lvalue(expr: Expr, token: Token) -> None:
    if not isinstance(expr, (Var, Index)):
        raise ParseError("assignment target is not an lvalue", token)


def parse(source: str) -> Program:
    """Parse mini-C ``source`` into a :class:`Program`."""
    return Parser(source).parse_program()
