"""Lexer for the mini-C language.

The corpus programs (``repro.workloads``) are written in a C subset
large enough to express the paper's benchmark kernels: functions,
global arrays, ``for``/``while``/``if``, calls to math intrinsics,
compound assignment and multi-dimensional array indexing.
"""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = frozenset(
    {
        "int",
        "long",
        "float",
        "double",
        "void",
        "if",
        "else",
        "for",
        "while",
        "return",
        "const",
        "break",
        "continue",
    }
)

#: Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = (
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "++",
    "--",
    "<<",
    ">>",
)

_SINGLE_OPS = "+-*/%<>=!&|^~?:;,(){}[]"


class LexerError(Exception):
    """Raised on malformed input, with line/column context."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is ``ident``, ``int``, ``float``, ``keyword``, ``op`` or
    ``eof``; ``text`` is the exact source spelling.
    """

    kind: str
    text: str
    line: int
    column: int

    def is_op(self, text: str) -> bool:
        """True if this is the operator/punctuator ``text``."""
        return self.kind == "op" and self.text == text

    def is_keyword(self, text: str) -> bool:
        """True if this is the keyword ``text``."""
        return self.kind == "keyword" and self.text == text


def tokenize(source: str) -> list[Token]:
    """Convert ``source`` into a token list ending with an ``eof`` token."""
    tokens: list[Token] = []
    index = 0
    line = 1
    column = 1
    length = len(source)

    def advance(count: int) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and source[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = source[index]
        if char in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", index):
            end = source.find("\n", index)
            advance((end - index) if end != -1 else (length - index))
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end == -1:
                raise LexerError("unterminated block comment", line, column)
            advance(end + 2 - index)
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (
                source[index].isalnum() or source[index] == "_"
            ):
                index += 1
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            column += index - start
            continue
        if char.isdigit() or (
            char == "." and index + 1 < length and source[index + 1].isdigit()
        ):
            start = index
            is_float = False
            while index < length and source[index].isdigit():
                index += 1
            if index < length and source[index] == ".":
                is_float = True
                index += 1
                while index < length and source[index].isdigit():
                    index += 1
            if index < length and source[index] in "eE":
                is_float = True
                index += 1
                if index < length and source[index] in "+-":
                    index += 1
                while index < length and source[index].isdigit():
                    index += 1
            text = source[start:index]
            tokens.append(
                Token("float" if is_float else "int", text, line, column)
            )
            column += index - start
            continue
        matched = False
        for op in _MULTI_OPS:
            if source.startswith(op, index):
                tokens.append(Token("op", op, line, column))
                advance(len(op))
                matched = True
                break
        if matched:
            continue
        if char in _SINGLE_OPS:
            tokens.append(Token("op", char, line, column))
            advance(1)
            continue
        raise LexerError(f"unexpected character {char!r}", line, column)

    tokens.append(Token("eof", "", line, column))
    return tokens
