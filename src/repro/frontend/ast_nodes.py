"""Abstract syntax tree of the mini-C language."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CType:
    """A mini-C type: base name, pointer depth and array dimensions.

    ``base`` is ``int``, ``double`` or ``void`` (the parser folds
    ``long``→``int`` and ``float``→``double``, documented in DESIGN.md).
    ``dims`` are the array dimensions (ints once resolved by sema).
    """

    base: str
    pointer: int = 0
    dims: tuple = ()

    def is_array(self) -> bool:
        """True if this type carries array dimensions."""
        return bool(self.dims)

    def is_pointer(self) -> bool:
        """True for explicit pointer types."""
        return self.pointer > 0

    def scalar(self) -> "CType":
        """The element type with pointers/dims stripped."""
        return CType(self.base)

    def __str__(self) -> str:
        text = self.base + "*" * self.pointer
        for dim in self.dims:
            text += f"[{dim}]"
        return text


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class of expressions; ``line`` is for diagnostics."""

    line: int = field(default=0, kw_only=True)


@dataclass
class IntLit(Expr):
    """Integer literal."""

    value: int


@dataclass
class FloatLit(Expr):
    """Floating point literal."""

    value: float


@dataclass
class Var(Expr):
    """Reference to a named variable."""

    name: str


@dataclass
class Index(Expr):
    """Array subscript ``base[i0][i1]...``; indices in source order."""

    base: Expr
    indices: list[Expr]


@dataclass
class Call(Expr):
    """Function call by name."""

    name: str
    args: list[Expr]


@dataclass
class Binary(Expr):
    """Binary operation (arithmetic, comparison, logical)."""

    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class Unary(Expr):
    """Unary ``-``, ``!`` or ``~``."""

    op: str
    operand: Expr


@dataclass
class Ternary(Expr):
    """Conditional expression ``cond ? a : b``."""

    cond: Expr
    if_true: Expr
    if_false: Expr


@dataclass
class CastExpr(Expr):
    """Explicit cast ``(type) expr``."""

    target: CType
    operand: Expr


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class of statements."""

    line: int = field(default=0, kw_only=True)


@dataclass
class Block(Stmt):
    """Brace-enclosed statement list."""

    statements: list[Stmt]


@dataclass
class VarDecl(Stmt):
    """Local variable declaration with optional initializer."""

    name: str
    type: CType
    init: Expr | None


@dataclass
class ExprStmt(Stmt):
    """Expression evaluated for side effects (typically a call)."""

    expr: Expr


@dataclass
class Assign(Stmt):
    """Assignment; ``op`` is ``=``, ``+=``, ``-=``, ``*=``, ``/=``, ``%=``."""

    target: Expr
    op: str
    value: Expr


@dataclass
class IncDec(Stmt):
    """``target++`` or ``target--`` as a statement."""

    target: Expr
    op: str


@dataclass
class If(Stmt):
    """Conditional with optional else branch."""

    cond: Expr
    then: Stmt
    orelse: Stmt | None


@dataclass
class For(Stmt):
    """C for loop; init/step are statements, either may be None."""

    init: Stmt | None
    cond: Expr | None
    step: Stmt | None
    body: Stmt


@dataclass
class While(Stmt):
    """While loop."""

    cond: Expr
    body: Stmt


@dataclass
class Break(Stmt):
    """Break out of the innermost loop."""


@dataclass
class Continue(Stmt):
    """Jump to the innermost loop's increment/condition."""


@dataclass
class Return(Stmt):
    """Function return with optional value."""

    value: Expr | None


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------


@dataclass
class Param:
    """Formal function parameter."""

    name: str
    type: CType


@dataclass
class FuncDef:
    """Function definition (or declaration when ``body`` is None)."""

    name: str
    return_type: CType
    params: list[Param]
    body: Block | None
    line: int = 0


@dataclass
class GlobalVar:
    """Global scalar or array declaration."""

    name: str
    type: CType
    init: Expr | None
    is_const: bool
    line: int = 0


@dataclass
class Program:
    """A full translation unit."""

    globals: list[GlobalVar]
    functions: list[FuncDef]
