"""Semantic analysis helpers: intrinsics, constant folding, signatures.

Sema is deliberately light: the mini-C type system has only ``int``
(64-bit), ``double`` and pointers, so most checking happens naturally
during lowering.  This module owns the pieces lowering consumes:

* the intrinsic table (with purity — the property the reduction
  specifications test on calls, §3.1.1);
* compile-time evaluation of constant expressions (array dimensions,
  ``const int`` globals, which behave like ``#define``);
* collection of function signatures before bodies are lowered.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ast_nodes import (
    Binary,
    CType,
    Expr,
    FloatLit,
    IntLit,
    Program,
    Unary,
    Var,
)


class SemaError(Exception):
    """Raised on semantic errors (unknown names, bad types, bad dims)."""


@dataclass(frozen=True)
class Intrinsic:
    """An external function known to the compiler."""

    name: str
    return_base: str
    param_bases: tuple[str, ...]
    pure: bool


#: Math intrinsics, all pure — including ``fmin``/``fmax``, which §6.1
#: highlights: our system knows they are pure while the icc model does not.
INTRINSICS: dict[str, Intrinsic] = {
    intrinsic.name: intrinsic
    for intrinsic in (
        Intrinsic("sqrt", "double", ("double",), True),
        Intrinsic("log", "double", ("double",), True),
        Intrinsic("exp", "double", ("double",), True),
        Intrinsic("fabs", "double", ("double",), True),
        Intrinsic("sin", "double", ("double",), True),
        Intrinsic("cos", "double", ("double",), True),
        Intrinsic("floor", "double", ("double",), True),
        Intrinsic("ceil", "double", ("double",), True),
        Intrinsic("pow", "double", ("double", "double"), True),
        Intrinsic("fmin", "double", ("double", "double"), True),
        Intrinsic("fmax", "double", ("double", "double"), True),
        Intrinsic("fmod", "double", ("double", "double"), True),
        Intrinsic("abs", "int", ("int",), True),
        Intrinsic("min", "int", ("int", "int"), True),
        Intrinsic("max", "int", ("int", "int"), True),
        # Impure intrinsics: used by negative tests and by corpus code that
        # must *not* be detected as a reduction.
        Intrinsic("rand", "int", (), False),
        Intrinsic("srand", "void", ("int",), False),
        Intrinsic("clock", "int", (), False),
        Intrinsic("print_int", "void", ("int",), False),
        Intrinsic("print_double", "void", ("double",), False),
    )
}


@dataclass
class Signature:
    """Resolved function signature."""

    name: str
    return_type: CType
    param_types: list[CType]
    param_names: list[str]
    pure: bool = False
    is_intrinsic: bool = False


def collect_signatures(program: Program) -> dict[str, Signature]:
    """Signatures of every function defined or declared in ``program``."""
    signatures: dict[str, Signature] = {}
    for function in program.functions:
        signatures[function.name] = Signature(
            function.name,
            function.return_type,
            [p.type for p in function.params],
            [p.name for p in function.params],
        )
    return signatures


def intrinsic_signature(name: str) -> Signature | None:
    """The signature of intrinsic ``name``, or None."""
    intrinsic = INTRINSICS.get(name)
    if intrinsic is None:
        return None
    return Signature(
        intrinsic.name,
        CType(intrinsic.return_base),
        [CType(base) for base in intrinsic.param_bases],
        [f"x{i}" for i in range(len(intrinsic.param_bases))],
        pure=intrinsic.pure,
        is_intrinsic=True,
    )


class ConstEvaluator:
    """Evaluates compile-time integer expressions.

    ``const int`` globals are treated like preprocessor constants: they
    are inlined at every use and may appear in array dimensions.
    """

    def __init__(self) -> None:
        self.constants: dict[str, int | float] = {}

    def define(self, name: str, value: int | float) -> None:
        """Register a named compile-time constant."""
        self.constants[name] = value

    def try_eval(self, expr: Expr) -> int | float | None:
        """Evaluate ``expr`` if it is compile-time constant, else None."""
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, FloatLit):
            return expr.value
        if isinstance(expr, Var):
            return self.constants.get(expr.name)
        if isinstance(expr, Unary):
            inner = self.try_eval(expr.operand)
            if inner is None:
                return None
            if expr.op == "-":
                return -inner
            if expr.op == "!":
                return int(not inner)
            if expr.op == "~" and isinstance(inner, int):
                return ~inner
            return None
        if isinstance(expr, Binary):
            lhs = self.try_eval(expr.lhs)
            rhs = self.try_eval(expr.rhs)
            if lhs is None or rhs is None:
                return None
            return _fold_binary(expr.op, lhs, rhs)
        return None

    def eval_int(self, expr: Expr, context: str) -> int:
        """Evaluate ``expr`` to an int, raising :class:`SemaError` if not."""
        value = self.try_eval(expr)
        if not isinstance(value, int):
            raise SemaError(f"{context}: expected a constant integer")
        return value


def _fold_binary(op: str, lhs, rhs):
    both_int = isinstance(lhs, int) and isinstance(rhs, int)
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        if rhs == 0:
            return None
        return _c_div(lhs, rhs) if both_int else lhs / rhs
    if op == "%":
        if rhs == 0 or not both_int:
            return None
        return _c_rem(lhs, rhs)
    if op == "<<" and both_int:
        return lhs << rhs
    if op == ">>" and both_int:
        return lhs >> rhs
    comparisons = {
        "==": lhs == rhs,
        "!=": lhs != rhs,
        "<": lhs < rhs,
        "<=": lhs <= rhs,
        ">": lhs > rhs,
        ">=": lhs >= rhs,
    }
    if op in comparisons:
        return int(comparisons[op])
    return None


def _c_div(a: int, b: int) -> int:
    """C-style truncating integer division."""
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


def _c_rem(a: int, b: int) -> int:
    """C-style remainder (sign of the dividend)."""
    return a - _c_div(a, b) * b
