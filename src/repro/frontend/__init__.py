"""Mini-C frontend: lexer, parser, sema and SSA lowering.

The main entry point is :func:`compile_source`, which runs the whole
pipeline (parse → lower → prune → mem2reg → cleanup → verify) and
returns a verified SSA :class:`~repro.ir.module.Module`.
"""

from ..ir import Module, verify_module
from ..passes.cse import local_cse
from ..passes.licm import hoist_invariant_loads
from ..passes.mem2reg import promote_allocas
from ..passes.simplify import (
    dead_code_elimination,
    merge_straightline_blocks,
    remove_trivial_phis,
    remove_unreachable_blocks,
)
from .ast_nodes import Program
from .lexer import LexerError, Token, tokenize
from .lowering import LoweringError, lower_program, lower_source
from .parser import ParseError, Parser, parse
from .sema import INTRINSICS, SemaError

__all__ = [
    "compile_source",
    "parse",
    "Parser",
    "ParseError",
    "tokenize",
    "Token",
    "LexerError",
    "lower_source",
    "lower_program",
    "LoweringError",
    "SemaError",
    "INTRINSICS",
    "Program",
]


def compile_source(source: str, name: str = "module") -> Module:
    """Compile mini-C ``source`` to a verified SSA module.

    The output is in the canonical shape the idiom specifications
    expect: scalar locals promoted to PHI-based SSA, unreachable
    lowering scaffolding pruned, straight-line blocks merged.
    """
    module = lower_source(source, name)
    for function in module.defined_functions():
        remove_unreachable_blocks(function)
        promote_allocas(function)
        dead_code_elimination(function)
        remove_trivial_phis(function)
        merge_straightline_blocks(function)
        hoist_invariant_loads(function)
        local_cse(function)
    verify_module(module)
    return module
