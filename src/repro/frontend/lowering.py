"""AST → SSA IR lowering.

Lowering follows the clang playbook the paper's constraint
specifications were written against:

* every local variable becomes an ``alloca`` in the entry block, reads
  become loads and writes become stores — the mem2reg pass then
  promotes scalars to SSA values, introducing the PHI nodes the
  for-loop and reduction specifications match (§3.1.1: *"due to the
  introduction of PHI nodes in the SSA intermediate representation"*);
* ``for`` loops are emitted in the canonical shape of Fig. 5 —
  dedicated header with the exit comparison, body region, separate
  latch holding the increment and the back edge;
* multi-dimensional arrays are flattened to explicit index arithmetic
  feeding a single-index ``gep``, the flat-array representation §6.1
  discusses.
"""

from __future__ import annotations

from ..ir import (
    DOUBLE,
    INT1,
    INT64,
    VOID,
    AllocaInst,
    BasicBlock,
    ConstantFloat,
    ConstantInt,
    Function,
    FunctionType,
    GlobalVariable,
    IRBuilder,
    Module,
    PointerType,
    Type,
    Value,
    const_bool,
    const_float,
    const_int,
)
from .ast_nodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    CastExpr,
    Continue,
    CType,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FuncDef,
    If,
    IncDec,
    Index,
    IntLit,
    Program,
    Return,
    Stmt,
    Ternary,
    Unary,
    Var,
    VarDecl,
    While,
)
from .parser import parse
from .sema import (
    ConstEvaluator,
    SemaError,
    Signature,
    collect_signatures,
    intrinsic_signature,
)


class LoweringError(Exception):
    """Raised when source cannot be lowered (unknown names, bad types)."""


def _ir_scalar_type(base: str) -> Type:
    if base == "int":
        return INT64
    if base == "double":
        return DOUBLE
    if base == "void":
        return VOID
    raise LoweringError(f"no IR type for {base!r}")


def _ir_type(ctype: CType) -> Type:
    base = _ir_scalar_type(ctype.base)
    for _ in range(ctype.pointer):
        base = PointerType(base)
    return base


class _Slot:
    """A named storage location visible to expressions."""

    def __init__(
        self,
        pointer: Value,
        element_type: Type,
        dims: tuple[int, ...] = (),
        is_pointer_var: bool = False,
    ):
        self.pointer = pointer
        self.element_type = element_type
        self.dims = dims
        self.is_pointer_var = is_pointer_var


class ModuleLowering:
    """Lower a parsed :class:`Program` into an IR :class:`Module`."""

    def __init__(self, program: Program, name: str = "module"):
        self.program = program
        self.module = Module(name)
        self.consts = ConstEvaluator()
        self.signatures = collect_signatures(program)
        self.global_slots: dict[str, _Slot] = {}

    def run(self) -> Module:
        """Lower globals, declare functions, then lower every body."""
        self._lower_globals()
        for func_def in self.program.functions:
            self._declare_function(func_def)
        for func_def in self.program.functions:
            if func_def.body is not None:
                FunctionLowering(self, func_def).lower()
        return self.module

    # -- globals and declarations ---------------------------------------------

    def _lower_globals(self) -> None:
        for decl in self.program.globals:
            init_value = (
                self.consts.try_eval(decl.init) if decl.init is not None else None
            )
            if decl.is_const and not decl.type.is_array():
                if init_value is None:
                    raise SemaError(
                        f"const global {decl.name} needs a constant initializer"
                    )
                self.consts.define(decl.name, init_value)
                continue
            dims = tuple(
                self.consts.eval_int(d, f"dimension of {decl.name}")
                for d in decl.type.dims
            )
            size = 1
            for dim in dims:
                if dim <= 0:
                    raise SemaError(f"non-positive dimension in {decl.name}")
                size *= dim
            element_type = _ir_scalar_type(decl.type.base)
            initializer = None
            if init_value is not None:
                initializer = [
                    float(init_value) if element_type == DOUBLE else int(init_value)
                ]
            variable = self.module.add_global(
                decl.name, element_type, size, initializer
            )
            self.global_slots[decl.name] = _Slot(variable, element_type, dims)

    def _declare_function(self, func_def: FuncDef) -> Function:
        param_types = tuple(_ir_type(p.type) for p in func_def.params)
        ftype = FunctionType(_ir_type(func_def.return_type), param_types)
        return self.module.add_function(
            func_def.name, ftype, [p.name for p in func_def.params]
        )

    def resolve_callee(self, name: str) -> tuple[Function, Signature]:
        """Find (declaring on demand) the IR function for a call."""
        if name in self.module.functions:
            signature = self.signatures.get(name) or intrinsic_signature(name)
            if signature is None:
                raise LoweringError(f"no signature for function {name!r}")
            return self.module.functions[name], signature
        signature = intrinsic_signature(name)
        if signature is None:
            raise LoweringError(f"call to unknown function {name!r}")
        ftype = FunctionType(
            _ir_scalar_type(signature.return_type.base),
            tuple(_ir_scalar_type(t.base) for t in signature.param_types),
        )
        function = self.module.add_function(
            name, ftype, signature.param_names, pure=signature.pure
        )
        return function, signature


class FunctionLowering:
    """Lowers one function body."""

    def __init__(self, parent: ModuleLowering, func_def: FuncDef):
        self.parent = parent
        self.func_def = func_def
        self.function = parent.module.get_function(func_def.name)
        self.builder = IRBuilder()
        self.scopes: list[dict[str, _Slot]] = [{}]
        self.loop_stack: list[tuple[BasicBlock, BasicBlock]] = []
        self.entry_block: BasicBlock | None = None
        self._alloca_count = 0

    # -- plumbing -----------------------------------------------------------

    def _new_alloca(self, element_type: Type, count: int, name: str) -> Value:
        alloca = AllocaInst(element_type, count, name)
        assert self.entry_block is not None
        self.entry_block.insert(self._alloca_count, alloca)
        self._alloca_count += 1
        return alloca

    def _lookup(self, name: str) -> _Slot | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return self.parent.global_slots.get(name)

    def _define_local(self, name: str, slot: _Slot) -> None:
        self.scopes[-1][name] = slot

    def _terminated(self) -> bool:
        block = self.builder.block
        return block is not None and block.terminator is not None

    # -- entry point -----------------------------------------------------------

    def lower(self) -> None:
        """Lower the whole function body."""
        self.entry_block = self.function.add_block("entry")
        start = self.function.add_block("start")
        self.builder.position_at_end(start)
        for argument, param in zip(self.function.args, self.func_def.params):
            slot_type = _ir_type(param.type)
            alloca = self._new_alloca(slot_type, 1, f"{param.name}.addr")
            self.builder.store(argument, alloca)
            if param.type.pointer > 0:
                element = _ir_scalar_type(param.type.base)
                self._define_local(
                    param.name, _Slot(alloca, element, is_pointer_var=True)
                )
            else:
                self._define_local(param.name, _Slot(alloca, slot_type))
        self.lower_statement(self.func_def.body)
        if not self._terminated():
            return_type = self.function.type.return_type
            if return_type.is_void():
                self.builder.ret()
            elif return_type == DOUBLE:
                self.builder.ret(const_float(0.0))
            else:
                self.builder.ret(const_int(0))
        entry_builder = IRBuilder(self.entry_block)
        entry_builder.br(start)

    # -- statements ---------------------------------------------------------

    def lower_statement(self, stmt: Stmt) -> None:
        if self._terminated():
            # Code after return/break: lower into a fresh unreachable
            # block, pruned later.
            dead = self.function.add_block("dead")
            self.builder.position_at_end(dead)
        if isinstance(stmt, Block):
            self.scopes.append({})
            for child in stmt.statements:
                self.lower_statement(child)
            self.scopes.pop()
        elif isinstance(stmt, VarDecl):
            self._lower_var_decl(stmt)
        elif isinstance(stmt, ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, IncDec):
            delta = IntLit(1, line=stmt.line)
            op = "+=" if stmt.op == "++" else "-="
            self._lower_assign(Assign(stmt.target, op, delta, line=stmt.line))
        elif isinstance(stmt, If):
            self._lower_if(stmt)
        elif isinstance(stmt, For):
            self._lower_for(stmt)
        elif isinstance(stmt, While):
            self._lower_while(stmt)
        elif isinstance(stmt, Break):
            if not self.loop_stack:
                raise LoweringError("break outside of a loop")
            self.builder.br(self.loop_stack[-1][1])
        elif isinstance(stmt, Continue):
            if not self.loop_stack:
                raise LoweringError("continue outside of a loop")
            self.builder.br(self.loop_stack[-1][0])
        elif isinstance(stmt, Return):
            self._lower_return(stmt)
        else:
            raise LoweringError(f"cannot lower statement {stmt!r}")

    def _lower_var_decl(self, stmt: VarDecl) -> None:
        if stmt.type.pointer > 0:
            raise LoweringError("local pointer variables are not supported")
        element_type = _ir_scalar_type(stmt.type.base)
        if stmt.type.is_array():
            dims = tuple(
                self.parent.consts.eval_int(d, f"dimension of {stmt.name}")
                for d in stmt.type.dims
            )
            size = 1
            for dim in dims:
                size *= dim
            alloca = self._new_alloca(element_type, size, stmt.name)
            self._define_local(stmt.name, _Slot(alloca, element_type, dims))
            if stmt.init is not None:
                raise LoweringError("array initializers are not supported")
            return
        alloca = self._new_alloca(element_type, 1, stmt.name)
        self._define_local(stmt.name, _Slot(alloca, element_type))
        if stmt.init is not None:
            value = self.lower_expr(stmt.init)
            self.builder.store(self._coerce(value, element_type), alloca)

    def _lower_assign(self, stmt: Assign) -> None:
        address, element_type = self.lvalue_address(stmt.target)
        if stmt.op == "=":
            value = self.lower_expr(stmt.value)
            self.builder.store(self._coerce(value, element_type), address)
            return
        current = self.builder.load(address)
        rhs = self.lower_expr(stmt.value)
        op = stmt.op[:-1]
        result = self._arith(op, current, rhs)
        self.builder.store(self._coerce(result, element_type), address)

    def _lower_if(self, stmt: If) -> None:
        then_block = self.function.add_block("if.then")
        join_block = self.function.add_block("if.end")
        else_block = (
            self.function.add_block("if.else") if stmt.orelse else join_block
        )
        self.lower_branch_condition(stmt.cond, then_block, else_block)
        self.builder.position_at_end(then_block)
        self.lower_statement(stmt.then)
        if not self._terminated():
            self.builder.br(join_block)
        if stmt.orelse is not None:
            self.builder.position_at_end(else_block)
            self.lower_statement(stmt.orelse)
            if not self._terminated():
                self.builder.br(join_block)
        self.builder.position_at_end(join_block)

    def _lower_for(self, stmt: For) -> None:
        if stmt.init is not None:
            self.lower_statement(stmt.init)
        header = self.function.add_block("for.cond")
        body = self.function.add_block("for.body")
        latch = self.function.add_block("for.inc")
        exit_block = self.function.add_block("for.end")
        self.builder.br(header)
        self.builder.position_at_end(header)
        if stmt.cond is not None:
            self.lower_branch_condition(stmt.cond, body, exit_block)
        else:
            self.builder.br(body)
        self.builder.position_at_end(body)
        self.loop_stack.append((latch, exit_block))
        self.lower_statement(stmt.body)
        self.loop_stack.pop()
        if not self._terminated():
            self.builder.br(latch)
        self.builder.position_at_end(latch)
        if stmt.step is not None:
            self.lower_statement(stmt.step)
        self.builder.br(header)
        self.builder.position_at_end(exit_block)

    def _lower_while(self, stmt: While) -> None:
        header = self.function.add_block("while.cond")
        body = self.function.add_block("while.body")
        exit_block = self.function.add_block("while.end")
        self.builder.br(header)
        self.builder.position_at_end(header)
        self.lower_branch_condition(stmt.cond, body, exit_block)
        self.builder.position_at_end(body)
        self.loop_stack.append((header, exit_block))
        self.lower_statement(stmt.body)
        self.loop_stack.pop()
        if not self._terminated():
            self.builder.br(header)
        self.builder.position_at_end(exit_block)

    def _lower_return(self, stmt: Return) -> None:
        return_type = self.function.type.return_type
        if stmt.value is None:
            if not return_type.is_void():
                raise LoweringError(
                    f"{self.function.name}: return without value"
                )
            self.builder.ret()
            return
        value = self.lower_expr(stmt.value)
        self.builder.ret(self._coerce(value, return_type))

    # -- conditions -----------------------------------------------------------

    def lower_branch_condition(
        self, expr: Expr, true_block: BasicBlock, false_block: BasicBlock
    ) -> None:
        """Lower a condition with C short-circuit semantics."""
        if isinstance(expr, Binary) and expr.op == "&&":
            mid = self.function.add_block("land")
            self.lower_branch_condition(expr.lhs, mid, false_block)
            self.builder.position_at_end(mid)
            self.lower_branch_condition(expr.rhs, true_block, false_block)
            return
        if isinstance(expr, Binary) and expr.op == "||":
            mid = self.function.add_block("lor")
            self.lower_branch_condition(expr.lhs, true_block, mid)
            self.builder.position_at_end(mid)
            self.lower_branch_condition(expr.rhs, true_block, false_block)
            return
        if isinstance(expr, Unary) and expr.op == "!":
            self.lower_branch_condition(expr.operand, false_block, true_block)
            return
        condition = self._as_bool(self.lower_expr(expr))
        self.builder.cond_br(condition, true_block, false_block)

    # -- expressions -----------------------------------------------------------

    def lower_expr(self, expr: Expr) -> Value:
        """Lower an expression for its value."""
        if isinstance(expr, IntLit):
            return const_int(expr.value)
        if isinstance(expr, FloatLit):
            return const_float(expr.value)
        if isinstance(expr, Var):
            return self._lower_var(expr)
        if isinstance(expr, Index):
            address, _ = self.lvalue_address(expr)
            return self.builder.load(address, "ld")
        if isinstance(expr, Call):
            return self._lower_call(expr)
        if isinstance(expr, Binary):
            return self._lower_binary(expr)
        if isinstance(expr, Unary):
            return self._lower_unary(expr)
        if isinstance(expr, Ternary):
            return self._lower_ternary(expr)
        if isinstance(expr, CastExpr):
            value = self.lower_expr(expr.operand)
            return self._coerce(value, _ir_type(expr.target))
        raise LoweringError(f"cannot lower expression {expr!r}")

    def _lower_var(self, expr: Var) -> Value:
        constant = self.parent.consts.constants.get(expr.name)
        if constant is not None:
            if isinstance(constant, float):
                return const_float(constant)
            return const_int(constant)
        slot = self._lookup(expr.name)
        if slot is None:
            raise LoweringError(f"unknown variable {expr.name!r}")
        if slot.dims:
            # Arrays decay to a pointer to their first element.
            return slot.pointer
        return self.builder.load(slot.pointer, expr.name)

    def _lower_call(self, expr: Call) -> Value:
        callee, signature = self.parent.resolve_callee(expr.name)
        if len(expr.args) != len(signature.param_types):
            raise LoweringError(
                f"call to {expr.name}: expected "
                f"{len(signature.param_types)} arguments, got {len(expr.args)}"
            )
        args = []
        for arg_expr, param_ctype in zip(expr.args, signature.param_types):
            value = self.lower_expr(arg_expr)
            args.append(self._coerce(value, _ir_type(param_ctype)))
        name = "" if callee.type.return_type.is_void() else expr.name
        return self.builder.call(callee, args, name)

    def _lower_binary(self, expr: Binary) -> Value:
        if expr.op in ("&&", "||"):
            # Value context: both sides are evaluated (the corpus only
            # uses logical operators on pure operands in value position).
            lhs = self._as_bool(self.lower_expr(expr.lhs))
            rhs = self._as_bool(self.lower_expr(expr.rhs))
            opcode = "and" if expr.op == "&&" else "or"
            result = self.builder.binary(opcode, lhs, rhs, "logic")
            return result
        if expr.op in ("==", "!=", "<", "<=", ">", ">="):
            return self._compare(expr.op, expr.lhs, expr.rhs)
        lhs = self.lower_expr(expr.lhs)
        rhs = self.lower_expr(expr.rhs)
        return self._arith(expr.op, lhs, rhs)

    _ICMP = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle", ">": "sgt",
             ">=": "sge"}
    _FCMP = {"==": "oeq", "!=": "one", "<": "olt", "<=": "ole", ">": "ogt",
             ">=": "oge"}

    def _compare(self, op: str, lhs_expr: Expr, rhs_expr: Expr) -> Value:
        lhs = self.lower_expr(lhs_expr)
        rhs = self.lower_expr(rhs_expr)
        if lhs.type == DOUBLE or rhs.type == DOUBLE:
            lhs = self._coerce(lhs, DOUBLE)
            rhs = self._coerce(rhs, DOUBLE)
            return self.builder.fcmp(self._FCMP[op], lhs, rhs, "cmp")
        lhs = self._coerce(lhs, INT64)
        rhs = self._coerce(rhs, INT64)
        return self.builder.icmp(self._ICMP[op], lhs, rhs, "cmp")

    _INT_OPS = {"+": "add", "-": "sub", "*": "mul", "/": "sdiv", "%": "srem",
                "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "ashr"}
    _FLOAT_OPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}

    def _arith(self, op: str, lhs: Value, rhs: Value) -> Value:
        folded = self._fold_constants(op, lhs, rhs)
        if folded is not None:
            return folded
        if lhs.type == DOUBLE or rhs.type == DOUBLE:
            if op not in self._FLOAT_OPS:
                raise LoweringError(f"operator {op!r} needs integer operands")
            lhs = self._coerce(lhs, DOUBLE)
            rhs = self._coerce(rhs, DOUBLE)
            return self.builder.binary(self._FLOAT_OPS[op], lhs, rhs, "f")
        if op not in self._INT_OPS:
            raise LoweringError(f"unknown operator {op!r}")
        lhs = self._coerce(lhs, INT64)
        rhs = self._coerce(rhs, INT64)
        return self.builder.binary(self._INT_OPS[op], lhs, rhs, "t")

    def _fold_constants(self, op: str, lhs: Value, rhs: Value) -> Value | None:
        """Fold arithmetic on literal operands (loop bounds like
        ``n - 1`` must lower to constants for the analyses to see a
        static iteration space)."""
        from .sema import _fold_binary

        if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
            value = _fold_binary(op, lhs.value, rhs.value)
            if isinstance(value, int):
                return const_int(value)
            return None
        lhs_const = isinstance(lhs, (ConstantInt, ConstantFloat))
        rhs_const = isinstance(rhs, (ConstantInt, ConstantFloat))
        if lhs_const and rhs_const:
            lhs_value = float(lhs.value)
            rhs_value = float(rhs.value)
            value = _fold_binary(op, lhs_value, rhs_value)
            if isinstance(value, float):
                return const_float(value)
            if isinstance(value, int):
                return const_float(float(value))
        return None

    def _lower_unary(self, expr: Unary) -> Value:
        if expr.op == "-":
            operand = self.lower_expr(expr.operand)
            if operand.type == DOUBLE:
                return self.builder.fsub(const_float(0.0), operand, "neg")
            return self.builder.sub(
                const_int(0), self._coerce(operand, INT64), "neg"
            )
        if expr.op == "!":
            operand = self._as_bool(self.lower_expr(expr.operand))
            return self.builder.binary("xor", operand, const_bool(True), "not")
        if expr.op == "~":
            operand = self._coerce(self.lower_expr(expr.operand), INT64)
            return self.builder.binary("xor", operand, const_int(-1), "bnot")
        raise LoweringError(f"unknown unary operator {expr.op!r}")

    def _lower_ternary(self, expr: Ternary) -> Value:
        condition = self._as_bool(self.lower_expr(expr.cond))
        if_true = self.lower_expr(expr.if_true)
        if_false = self.lower_expr(expr.if_false)
        if if_true.type == DOUBLE or if_false.type == DOUBLE:
            if_true = self._coerce(if_true, DOUBLE)
            if_false = self._coerce(if_false, DOUBLE)
        elif if_true.type != if_false.type:
            if_true = self._coerce(if_true, INT64)
            if_false = self._coerce(if_false, INT64)
        return self.builder.select(condition, if_true, if_false, "sel")

    # -- lvalues -----------------------------------------------------------

    def lvalue_address(self, expr: Expr) -> tuple[Value, Type]:
        """Address and element type of an assignable expression."""
        if isinstance(expr, Var):
            slot = self._lookup(expr.name)
            if slot is None:
                raise LoweringError(f"unknown variable {expr.name!r}")
            if slot.dims:
                raise LoweringError(f"cannot assign to array {expr.name!r}")
            if slot.is_pointer_var:
                raise LoweringError(
                    f"cannot reassign pointer parameter {expr.name!r}"
                )
            return slot.pointer, slot.element_type
        if isinstance(expr, Index):
            return self._index_address(expr)
        raise LoweringError(f"expression {expr!r} is not an lvalue")

    def _index_address(self, expr: Index) -> tuple[Value, Type]:
        if not isinstance(expr.base, Var):
            raise LoweringError("only named arrays can be indexed")
        slot = self._lookup(expr.base.name)
        if slot is None:
            raise LoweringError(f"unknown array {expr.base.name!r}")
        if slot.is_pointer_var:
            if len(expr.indices) != 1:
                raise LoweringError(
                    f"pointer {expr.base.name!r} takes exactly one index"
                )
            pointer = self.builder.load(slot.pointer, expr.base.name)
            index = self._coerce(self.lower_expr(expr.indices[0]), INT64)
            address = self.builder.gep(pointer, index, "arrayidx")
            return address, slot.element_type
        if not slot.dims:
            raise LoweringError(f"{expr.base.name!r} is not an array")
        if len(expr.indices) != len(slot.dims):
            raise LoweringError(
                f"array {expr.base.name!r} needs {len(slot.dims)} indices, "
                f"got {len(expr.indices)}"
            )
        flat = self._coerce(self.lower_expr(expr.indices[0]), INT64)
        for dimension, index_expr in zip(slot.dims[1:], expr.indices[1:]):
            scaled = self.builder.mul(flat, const_int(dimension), "mulidx")
            index = self._coerce(self.lower_expr(index_expr), INT64)
            flat = self.builder.add(scaled, index, "addidx")
        address = self.builder.gep(slot.pointer, flat, "arrayidx")
        return address, slot.element_type

    # -- coercions -----------------------------------------------------------

    def _as_bool(self, value: Value) -> Value:
        if value.type == INT1:
            return value
        if value.type == DOUBLE:
            return self.builder.fcmp("one", value, const_float(0.0), "tobool")
        return self.builder.icmp(
            "ne", self._coerce(value, INT64), const_int(0), "tobool"
        )

    def _coerce(self, value: Value, target: Type) -> Value:
        if value.type == target:
            return value
        if target == DOUBLE:
            if isinstance(value, ConstantInt):
                return const_float(float(value.value))
            if value.type == INT1:
                value = self.builder.cast("zext", value, INT64, "ext")
            return self.builder.cast("sitofp", value, DOUBLE, "conv")
        if target == INT64:
            if isinstance(value, ConstantFloat):
                return const_int(int(value.value))
            if value.type == INT1:
                return self.builder.cast("zext", value, INT64, "ext")
            if value.type == DOUBLE:
                return self.builder.cast("fptosi", value, INT64, "conv")
        if target == INT1:
            return self._as_bool(value)
        raise LoweringError(f"cannot convert {value.type} to {target}")


def lower_program(program: Program, name: str = "module") -> Module:
    """Lower a parsed program (allocas intact, before mem2reg)."""
    return ModuleLowering(program, name).run()


def lower_source(source: str, name: str = "module") -> Module:
    """Parse and lower mini-C source (before mem2reg)."""
    return lower_program(parse(source), name)
