"""Tests for the corpus-scale detection pipeline.

The determinism contract: a sharded run (``jobs>1``) must produce a
report *identical* — same digests, same fingerprint — to the serial
run, for any shard count and any program subset; and the shared-cache
engine must find exactly the detections of the per-call-cache PR-1
engine, with strictly less search effort.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.idioms import find_extended_reductions, find_reductions
from repro.pipeline import (
    PipelineOptions,
    WorkUnit,
    assemble_program,
    detect_corpus,
    detect_unit,
    digest_extensions,
    digest_report,
    make_shards,
    measured_weights,
    merge_digests,
    merge_unit_digests,
    plan_units,
    report_from_json,
    report_to_json,
    run_shard,
    run_unit_shard,
    unit_weight,
)
from repro.workloads import corpus_keys, program

KEYS = corpus_keys()


# -- sharding -----------------------------------------------------------------


def test_corpus_keys_cover_the_40_programs():
    assert len(KEYS) == 40
    assert len(set(KEYS)) == 40


@pytest.mark.parametrize("jobs", [1, 2, 3, 7, 40, 100])
def test_make_shards_partitions_exactly(jobs):
    shards = make_shards(KEYS, jobs)
    assert len(shards) <= jobs
    flattened = [key for shard in shards for key in shard]
    assert sorted(flattened) == sorted(KEYS)
    # Deterministic: the same inputs shard the same way.
    assert shards == make_shards(KEYS, jobs)


def test_make_shards_preserves_canonical_order_within_shards():
    for shard in make_shards(KEYS, 4):
        positions = [KEYS.index(key) for key in shard]
        assert positions == sorted(positions)


def test_make_shards_rejects_bad_jobs():
    with pytest.raises(ValueError):
        make_shards(KEYS, 0)


def test_make_shards_evaluates_weight_once_per_key():
    """The weight source may load programs or walk digests, so
    ``make_shards`` must memoize it — one call per key per invocation
    (the PR-2 engine called it twice: in the sort key and again when
    accumulating loads)."""
    calls = []

    def counting_weight(key):
        calls.append(key)
        return len(key[0])

    make_shards(KEYS, 4, weight=counting_weight)
    assert sorted(calls) == sorted(KEYS)


# -- work units and weights ---------------------------------------------------


def test_plan_units_program_granularity_is_one_unit_per_key():
    units = plan_units(KEYS, "program")
    assert [u.key for u in units] == KEYS
    assert all(u.function is None and u.lead for u in units)


def test_plan_units_function_granularity_covers_every_function():
    units = plan_units(KEYS, "function")
    assert len(units) > len(KEYS)
    by_key = {}
    for unit in units:
        by_key.setdefault(unit.key, []).append(unit)
    for key, key_units in by_key.items():
        module = program(*key).compile()
        defined = [f.name for f in module.defined_functions()]
        if len(key_units) == 1 and key_units[0].function is None:
            continue  # below threshold, stays whole
        assert [u.function for u in key_units] == defined
        # Exactly one lead unit per program carries the baselines.
        assert [u.lead for u in key_units].count(True) == 1
        assert key_units[0].lead


def test_plan_units_split_threshold_keeps_small_programs_whole():
    units = plan_units(KEYS, "function", split_threshold=10 ** 6)
    assert [u.key for u in units] == KEYS
    assert all(u.function is None for u in units)


def test_plan_units_rejects_unknown_granularity():
    with pytest.raises(ValueError, match="granularity"):
        plan_units(KEYS, "module")


def test_unit_weight_static_proxies():
    whole = WorkUnit(*KEYS[0])
    assert unit_weight(whole) == len(program(*KEYS[0]).source)
    units = plan_units(KEYS[:1], "function")
    if units[0].function is not None:
        assert all(unit_weight(u) > 0 for u in units)


# -- per-worker module cache --------------------------------------------------


def test_module_cache_evicts_least_recently_used():
    from repro.pipeline.worker import ModuleCache

    cache = ModuleCache(max_entries=2)
    key_a, key_b, key_c = KEYS[:3]
    module_a, seconds_a = cache.module(key_a)
    assert seconds_a > 0  # the miss is charged to this call
    cache.module(key_b)
    assert cache.keys() == [key_a, key_b]
    # A hit returns the same object for free and refreshes recency.
    hit, seconds_hit = cache.module(key_a)
    assert hit is module_a
    assert seconds_hit == 0.0
    assert cache.keys() == [key_b, key_a]
    # The third module evicts the now-least-recently-used key_b.
    cache.module(key_c)
    assert cache.keys() == [key_a, key_c]
    assert len(cache) == 2
    # The evicted module is recompiled on the next touch.
    _, seconds_again = cache.module(key_b)
    assert seconds_again > 0


def test_module_cache_unbounded_by_default():
    from repro.pipeline.worker import ModuleCache

    cache = ModuleCache()
    for key in KEYS[:5]:
        cache.module(key)
    assert len(cache) == 5


def test_module_cache_rejects_bad_bound():
    from repro.pipeline.worker import ModuleCache

    with pytest.raises(ValueError, match="max_entries"):
        ModuleCache(max_entries=0)


def test_options_validate_cache_and_budget_bounds():
    with pytest.raises(ValueError, match="module_cache_size"):
        PipelineOptions(module_cache_size=0)
    with pytest.raises(ValueError, match="gateway_unit_budget"):
        PipelineOptions(gateway_unit_budget=0)


def test_bounded_module_cache_never_changes_digests():
    """Eviction is recompute cost only: the tightest possible cache
    (one module per worker) produces byte-identical digests."""
    from repro.pipeline import DetectionPipeline

    serial = detect_corpus(jobs=1, keys=KEYS[:4])
    bounded = DetectionPipeline(
        PipelineOptions(jobs=2, granularity="function",
                        module_cache_size=1)
    ).run(keys=KEYS[:4])
    assert bounded.programs == serial.programs
    assert bounded.fingerprint() == serial.fingerprint()


def test_measured_weights_prefer_recorded_costs():
    report = detect_corpus(jobs=1, keys=KEYS[:3])
    weight = measured_weights(report)
    seconds = sum(sum(p.stage_seconds.values()) for p in report.programs)
    evals = sum(1 + p.constraint_evals for p in report.programs)
    for digest in report.programs:
        assert weight(digest.key) == pytest.approx(
            sum(digest.stage_seconds.values())
        )
        for f in digest.functions:
            unit = WorkUnit(digest.name, digest.suite, function=f.function)
            # Function weights are evals rescaled onto the seconds
            # scale, so program and function units stay commensurable.
            assert weight(unit) == pytest.approx(
                (1 + f.constraint_evals) * seconds / evals
            )
    # Unseen work is scheduled at the measured mean — deterministic,
    # commensurable with the warm entries.
    unseen = weight(("no-such-program", "NAS"))
    costs = [sum(p.stage_seconds.values()) for p in report.programs]
    assert unseen == pytest.approx(sum(costs) / len(costs))


def test_measured_weights_rescale_untimed_programs():
    """A program whose digest carries no timings is weighted by its
    constraint evals rescaled into the seconds scale — not by a raw
    eval count thousands of times its peers' weights."""
    report = detect_corpus(jobs=1, keys=KEYS[:3])
    stripped = report.programs[0]
    untimed = stripped.__class__(
        name=stripped.name, suite=stripped.suite,
        functions=stripped.functions, extended=stripped.extended,
        icc=stripped.icc, polly_scops=stripped.polly_scops,
        polly_reductions=stripped.polly_reductions, stage_seconds={},
    )
    doctored = report.__class__(
        programs=(untimed,) + report.programs[1:]
    )
    weight = measured_weights(doctored)
    timed_weights = [weight(p.key) for p in report.programs[1:]]
    assert weight(untimed.key) < 100 * max(timed_weights)


# -- unit digests and assembly ------------------------------------------------


def test_function_units_assemble_to_the_program_digest():
    """Per-function unit digests reassemble byte-for-byte into the
    whole-program digest — functions in module order, extension matches
    regrouped, baselines from the lead unit."""
    options = PipelineOptions(extended=True, baselines=True)
    for key in [("EP", "NAS"), ("histo", "Parboil"), ("kmeans", "Rodinia")]:
        whole = run_shard([key], options)[0]
        units = plan_units([key], "function")
        unit_digests = run_unit_shard(units, options)
        assembled = assemble_program(unit_digests)
        assert assembled == whole
        assert assembled.stage_seconds.keys() >= {"detect"}


def test_assemble_program_rejects_incomplete_and_mixed_units():
    options = PipelineOptions()
    units = plan_units([("EP", "NAS")], "function")
    digests = run_unit_shard(units, options)
    if len(digests) > 1:
        with pytest.raises(ValueError, match="exactly once"):
            assemble_program(digests[:-1])
        with pytest.raises(ValueError, match="exactly once"):
            assemble_program(digests + [digests[0]])
    other = run_unit_shard(plan_units([("IS", "NAS")], "function"),
                           options)
    with pytest.raises(ValueError, match="mixed"):
        assemble_program([digests[0], other[0]])
    with pytest.raises(ValueError, match="no units"):
        assemble_program([])


def test_merge_unit_digests_checks_duplicates_and_coverage():
    options = PipelineOptions()
    units = plan_units(KEYS[:2], "function")
    digests = run_unit_shard(units, options)
    merged = merge_unit_digests([digests], KEYS[:2])
    assert [d.key for d in merged] == KEYS[:2]
    with pytest.raises(ValueError, match="two shards"):
        merge_unit_digests([digests, digests], KEYS[:2])
    with pytest.raises(ValueError, match="no result"):
        merge_unit_digests([digests], KEYS[:3])
    with pytest.raises(ValueError, match="unrequested"):
        merge_unit_digests([digests], KEYS[:1])


def test_stage_seconds_sum_across_assembled_units():
    """Timing metadata survives the checked merge — summed per stage —
    without perturbing digest equality (satellite audit)."""
    options = PipelineOptions()
    units = plan_units([("EP", "NAS")], "function")
    digests = run_unit_shard(units, options)
    assembled = assemble_program(digests)
    for stage in ("compile", "detect"):
        expected = sum(d.stage_seconds.get(stage, 0.0) for d in digests)
        assert assembled.stage_seconds.get(stage, 0.0) == pytest.approx(
            expected
        )
    # compare=False: a digest with different timings is still equal.
    bare = assembled.__class__(
        name=assembled.name, suite=assembled.suite,
        functions=assembled.functions, extended=assembled.extended,
        icc=assembled.icc, polly_scops=assembled.polly_scops,
        polly_reductions=assembled.polly_reductions, stage_seconds={},
    )
    assert bare == assembled


# -- JSON round trip ----------------------------------------------------------


def test_report_json_round_trip_preserves_fingerprint():
    report = detect_corpus(jobs=1, extended=True, baselines=True,
                           keys=KEYS[:4])
    data = report_to_json(report)
    rebuilt = report_from_json(data)
    assert rebuilt.programs == report.programs
    assert rebuilt.fingerprint() == report.fingerprint()
    # Timing metadata (excluded from the fingerprint) survives too.
    for original, copied in zip(report.programs, rebuilt.programs):
        assert copied.stage_seconds == original.stage_seconds


def test_report_json_rejects_tampered_contents():
    report = detect_corpus(jobs=1, keys=KEYS[:2])
    data = report_to_json(report)
    data["programs"][0]["functions"] = []
    with pytest.raises(ValueError, match="fingerprint"):
        report_from_json(data)


# -- merge --------------------------------------------------------------------


def _digests(keys):
    return run_shard(keys, PipelineOptions())


def test_merge_restores_canonical_order():
    keys = KEYS[:4]
    shards = [[keys[2], keys[3]], [keys[0], keys[1]]]
    merged = merge_digests([_digests(s) for s in shards], keys)
    assert [d.key for d in merged] == keys


def test_merge_rejects_duplicates_missing_and_unrequested():
    keys = KEYS[:2]
    digests = _digests(keys)
    with pytest.raises(ValueError, match="two shards"):
        merge_digests([digests, digests], keys)
    with pytest.raises(ValueError, match="no result"):
        merge_digests([digests], KEYS[:3])
    with pytest.raises(ValueError, match="unrequested"):
        merge_digests([digests], keys[:1])


# -- determinism: jobs=1 ≡ jobs=N --------------------------------------------


def test_parallel_corpus_detection_identical_to_serial():
    """The acceptance criterion: over all 40 corpus programs, a
    sharded run merges to a report byte-identical to the serial one."""
    serial = detect_corpus(jobs=1, extended=True, baselines=True)
    parallel = detect_corpus(jobs=2, extended=True, baselines=True)
    assert serial.programs == parallel.programs
    assert serial.fingerprint() == parallel.fingerprint()
    assert serial.counts() == (84, 6)


@settings(max_examples=5, deadline=None)
@given(data=st.data())
def test_any_shard_count_and_subset_is_deterministic(data):
    """Property form: any jobs>=2 and any corpus subset produce the
    serial report exactly."""
    keys = data.draw(
        st.lists(st.sampled_from(KEYS), min_size=1, max_size=6,
                 unique=True),
        label="keys",
    )
    keys.sort(key=KEYS.index)
    jobs = data.draw(st.integers(min_value=2, max_value=8), label="jobs")
    serial = detect_corpus(jobs=1, keys=keys)
    parallel = detect_corpus(jobs=jobs, keys=keys)
    assert serial.programs == parallel.programs
    assert serial.fingerprint() == parallel.fingerprint()


# -- shared-cache engine ≡ per-call engine ------------------------------------


def test_shared_cache_engine_matches_per_call_detections():
    """Same detections as PR-1's per-call-cache engine, with strictly
    fewer constraint evaluations (the shared for-loop prefix)."""
    shared = detect_corpus(jobs=1, extended=True)
    per_call = detect_corpus(jobs=1, extended=True, shared_cache=False)
    assert shared.fingerprint(effort=False) == per_call.fingerprint(
        effort=False
    )
    assert shared.total_constraint_evals < per_call.total_constraint_evals


# -- digests match the in-process drivers -------------------------------------


def test_program_digests_match_find_reductions():
    """The pipeline digest of a program equals digesting a plain
    ``find_reductions`` run — the pipeline adds sharding and caching,
    never different detections."""
    for key in [("EP", "NAS"), ("histo", "Parboil"), ("kmeans", "Rodinia")]:
        bench = program(*key)
        module = bench.fresh_module()
        expected_functions = digest_report(find_reductions(module))
        digest = _digests([key])[0]
        # Search-effort counters depend on cache state, so compare the
        # detections themselves.
        strip = lambda fns: [
            (f.function, f.scalars, f.histograms) for f in fns
        ]
        assert strip(digest.functions) == strip(expected_functions)
        scalars, histograms = digest.counts()
        assert scalars == bench.expectation.ours_scalars
        assert histograms == bench.expectation.ours_histograms


def test_extension_digests_match_native_driver():
    report = detect_corpus(jobs=1, extended=True, suites=("NAS",))
    for digest in report.programs:
        module = program(digest.name, digest.suite).fresh_module()
        expected = digest_extensions(find_extended_reductions(module))
        assert tuple(sorted(d.name for d in digest.extended)) == tuple(
            sorted(d.name for d in expected)
        )


def test_baseline_stage_records_model_counts():
    report = detect_corpus(jobs=1, baselines=True, suites=("Parboil",))
    for digest in report.programs:
        expectation = program(digest.name, digest.suite).expectation
        assert digest.icc == expectation.icc
        assert digest.polly_scops == expectation.scops
        assert digest.polly_reductions == expectation.polly_reductions


def test_stage_timings_are_recorded_but_not_compared():
    a, b = (_digests([("EP", "NAS")])[0] for _ in range(2))
    assert set(a.stage_seconds) >= {"compile", "detect"}
    assert a == b  # stage_seconds is compare=False
