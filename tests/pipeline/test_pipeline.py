"""Tests for the corpus-scale detection pipeline.

The determinism contract: a sharded run (``jobs>1``) must produce a
report *identical* — same digests, same fingerprint — to the serial
run, for any shard count and any program subset; and the shared-cache
engine must find exactly the detections of the per-call-cache PR-1
engine, with strictly less search effort.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.idioms import find_extended_reductions, find_reductions
from repro.pipeline import (
    PipelineOptions,
    detect_corpus,
    digest_extensions,
    digest_report,
    make_shards,
    merge_digests,
    run_shard,
)
from repro.workloads import corpus_keys, program

KEYS = corpus_keys()


# -- sharding -----------------------------------------------------------------


def test_corpus_keys_cover_the_40_programs():
    assert len(KEYS) == 40
    assert len(set(KEYS)) == 40


@pytest.mark.parametrize("jobs", [1, 2, 3, 7, 40, 100])
def test_make_shards_partitions_exactly(jobs):
    shards = make_shards(KEYS, jobs)
    assert len(shards) <= jobs
    flattened = [key for shard in shards for key in shard]
    assert sorted(flattened) == sorted(KEYS)
    # Deterministic: the same inputs shard the same way.
    assert shards == make_shards(KEYS, jobs)


def test_make_shards_preserves_canonical_order_within_shards():
    for shard in make_shards(KEYS, 4):
        positions = [KEYS.index(key) for key in shard]
        assert positions == sorted(positions)


def test_make_shards_rejects_bad_jobs():
    with pytest.raises(ValueError):
        make_shards(KEYS, 0)


# -- merge --------------------------------------------------------------------


def _digests(keys):
    return run_shard(keys, PipelineOptions())


def test_merge_restores_canonical_order():
    keys = KEYS[:4]
    shards = [[keys[2], keys[3]], [keys[0], keys[1]]]
    merged = merge_digests([_digests(s) for s in shards], keys)
    assert [d.key for d in merged] == keys


def test_merge_rejects_duplicates_missing_and_unrequested():
    keys = KEYS[:2]
    digests = _digests(keys)
    with pytest.raises(ValueError, match="two shards"):
        merge_digests([digests, digests], keys)
    with pytest.raises(ValueError, match="no result"):
        merge_digests([digests], KEYS[:3])
    with pytest.raises(ValueError, match="unrequested"):
        merge_digests([digests], keys[:1])


# -- determinism: jobs=1 ≡ jobs=N --------------------------------------------


def test_parallel_corpus_detection_identical_to_serial():
    """The acceptance criterion: over all 40 corpus programs, a
    sharded run merges to a report byte-identical to the serial one."""
    serial = detect_corpus(jobs=1, extended=True, baselines=True)
    parallel = detect_corpus(jobs=2, extended=True, baselines=True)
    assert serial.programs == parallel.programs
    assert serial.fingerprint() == parallel.fingerprint()
    assert serial.counts() == (84, 6)


@settings(max_examples=5, deadline=None)
@given(data=st.data())
def test_any_shard_count_and_subset_is_deterministic(data):
    """Property form: any jobs>=2 and any corpus subset produce the
    serial report exactly."""
    keys = data.draw(
        st.lists(st.sampled_from(KEYS), min_size=1, max_size=6,
                 unique=True),
        label="keys",
    )
    keys.sort(key=KEYS.index)
    jobs = data.draw(st.integers(min_value=2, max_value=8), label="jobs")
    serial = detect_corpus(jobs=1, keys=keys)
    parallel = detect_corpus(jobs=jobs, keys=keys)
    assert serial.programs == parallel.programs
    assert serial.fingerprint() == parallel.fingerprint()


# -- shared-cache engine ≡ per-call engine ------------------------------------


def test_shared_cache_engine_matches_per_call_detections():
    """Same detections as PR-1's per-call-cache engine, with strictly
    fewer constraint evaluations (the shared for-loop prefix)."""
    shared = detect_corpus(jobs=1, extended=True)
    per_call = detect_corpus(jobs=1, extended=True, shared_cache=False)
    assert shared.fingerprint(effort=False) == per_call.fingerprint(
        effort=False
    )
    assert shared.total_constraint_evals < per_call.total_constraint_evals


# -- digests match the in-process drivers -------------------------------------


def test_program_digests_match_find_reductions():
    """The pipeline digest of a program equals digesting a plain
    ``find_reductions`` run — the pipeline adds sharding and caching,
    never different detections."""
    for key in [("EP", "NAS"), ("histo", "Parboil"), ("kmeans", "Rodinia")]:
        bench = program(*key)
        module = bench.fresh_module()
        expected_functions = digest_report(find_reductions(module))
        digest = _digests([key])[0]
        # Search-effort counters depend on cache state, so compare the
        # detections themselves.
        strip = lambda fns: [
            (f.function, f.scalars, f.histograms) for f in fns
        ]
        assert strip(digest.functions) == strip(expected_functions)
        scalars, histograms = digest.counts()
        assert scalars == bench.expectation.ours_scalars
        assert histograms == bench.expectation.ours_histograms


def test_extension_digests_match_native_driver():
    report = detect_corpus(jobs=1, extended=True, suites=("NAS",))
    for digest in report.programs:
        module = program(digest.name, digest.suite).fresh_module()
        expected = digest_extensions(find_extended_reductions(module))
        assert tuple(sorted(d.name for d in digest.extended)) == tuple(
            sorted(d.name for d in expected)
        )


def test_baseline_stage_records_model_counts():
    report = detect_corpus(jobs=1, baselines=True, suites=("Parboil",))
    for digest in report.programs:
        expectation = program(digest.name, digest.suite).expectation
        assert digest.icc == expectation.icc
        assert digest.polly_scops == expectation.scops
        assert digest.polly_reductions == expectation.polly_reductions


def test_stage_timings_are_recorded_but_not_compared():
    a, b = (_digests([("EP", "NAS")])[0] for _ in range(2))
    assert set(a.stage_seconds) >= {"compile", "detect"}
    assert a == b  # stage_seconds is compare=False
