"""Tests for the persistent serving engine and function-level sharding.

The serving contract extends the batch pipeline's determinism
contract: a report served by the persistent worker pool — at any
granularity, over any subset, with warm or cold workers — must be
fingerprint-identical to the serial batch run with the same options.
"""

import multiprocessing

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline import (
    PipelineOptions,
    ServingEngine,
    detect_corpus,
    measured_weights,
)
from repro.workloads import corpus_keys

KEYS = corpus_keys()

SERIAL = None


def serial_report():
    """The jobs=1 program-granularity reference, computed once."""
    global SERIAL
    if SERIAL is None:
        SERIAL = detect_corpus(jobs=1, extended=True, baselines=True)
    return SERIAL


# -- function granularity ≡ program granularity -------------------------------


def test_function_granularity_reproduces_program_fingerprint():
    """The acceptance criterion: function-level shards merge to a
    report byte-identical to program-level shards, serial or sharded."""
    serial = serial_report()
    for jobs in (1, 3):
        report = detect_corpus(jobs=jobs, extended=True, baselines=True,
                               granularity="function")
        assert report.programs == serial.programs
        assert report.fingerprint() == serial.fingerprint()


def test_measured_weights_reproduce_the_fingerprint():
    """Measured-cost sharding changes the schedule, never the report."""
    serial = serial_report()
    report = detect_corpus(jobs=3, extended=True, baselines=True,
                           granularity="function", weights=serial)
    assert report.fingerprint() == serial.fingerprint()


@settings(max_examples=4, deadline=None)
@given(data=st.data())
def test_any_granularity_jobs_and_subset_is_deterministic(data):
    """Property form: any jobs, any subset, any granularity produce
    the serial report exactly."""
    keys = data.draw(
        st.lists(st.sampled_from(KEYS), min_size=1, max_size=5,
                 unique=True),
        label="keys",
    )
    keys.sort(key=KEYS.index)
    jobs = data.draw(st.integers(min_value=2, max_value=6), label="jobs")
    granularity = data.draw(
        st.sampled_from(["program", "function"]), label="granularity"
    )
    serial = detect_corpus(jobs=1, keys=keys)
    sharded = detect_corpus(jobs=jobs, keys=keys, granularity=granularity)
    assert sharded.programs == serial.programs
    assert sharded.fingerprint() == serial.fingerprint()


# -- serving engine -----------------------------------------------------------


def test_served_report_is_fingerprint_identical_to_batch():
    serial = serial_report()
    options = PipelineOptions(jobs=3, extended=True, baselines=True,
                              granularity="function")
    with ServingEngine(options) as engine:
        report = engine.serve()
    assert report.programs == serial.programs
    assert report.fingerprint() == serial.fingerprint()


def test_streaming_yields_every_program_once():
    options = PipelineOptions(jobs=2, granularity="function")
    keys = KEYS[:6]
    with ServingEngine(options) as engine:
        job = engine.submit(keys)
        streamed = [digest.key for digest in job.stream()]
    # Completion order is arbitrary; coverage is exact.
    assert sorted(streamed) == sorted(keys)
    assert job.done


def test_warm_workers_serve_repeated_requests_identically():
    """The persistent pool's point: the second request reuses live
    workers (compiled modules, registries) and still matches."""
    options = PipelineOptions(jobs=2, extended=True,
                              granularity="function")
    with ServingEngine(options) as engine:
        first = engine.serve()
        second = engine.serve()
    assert first.programs == second.programs
    assert first.fingerprint() == second.fingerprint()
    assert first.fingerprint() == detect_corpus(
        jobs=1, extended=True
    ).fingerprint()


def test_interleaved_jobs_route_results_by_id():
    """Two jobs in flight at once: results are routed by job id, and
    each job's report covers exactly its own keys."""
    options = PipelineOptions(jobs=2, granularity="function")
    with ServingEngine(options) as engine:
        job_a = engine.submit(KEYS[:3])
        job_b = engine.submit(KEYS[3:5])
        report_b = job_b.result()
        report_a = job_a.result()
    assert [d.key for d in report_a.programs] == KEYS[:3]
    assert [d.key for d in report_b.programs] == KEYS[3:5]
    serial = detect_corpus(jobs=1, keys=KEYS[:5])
    assert (report_a.programs + report_b.programs) == serial.programs


def test_serving_with_measured_weights_orders_heavy_first():
    serial = serial_report()
    options = PipelineOptions(jobs=2, extended=True, baselines=True,
                              granularity="function")
    with ServingEngine(options) as engine:
        report = engine.serve(weights=serial)
    assert report.fingerprint() == serial.fingerprint()


def test_failed_unit_raises_on_stream_not_in_the_worker():
    options = PipelineOptions(jobs=2)
    with ServingEngine(options) as engine:
        # Constant weights: the parent ships the unit without looking
        # the program up, so the *worker* hits the failure.
        job = engine.submit([("no-such-program", "NAS")],
                            weights=lambda unit: 1.0)
        with pytest.raises(RuntimeError, match="no-such-program"):
            job.result()
        # The pool survives a failed unit and serves the next request.
        report = engine.serve(KEYS[:2])
    assert report.fingerprint() == detect_corpus(
        jobs=1, keys=KEYS[:2]
    ).fingerprint()


def test_shutdown_fails_pending_jobs_instead_of_hanging():
    """A job abandoned by shutdown raises from stream()/result() —
    it must never wait on queues that no longer exist."""
    options = PipelineOptions(jobs=2, granularity="function")
    engine = ServingEngine(options)
    job = engine.submit(KEYS[:4])
    engine.shutdown()
    with pytest.raises(RuntimeError, match="shut down"):
        job.result()
    # The engine itself restarts cleanly afterwards.
    with engine:
        report = engine.serve(KEYS[:2])
    assert len(report.programs) == 2


def test_shutdown_wakes_a_consumer_blocked_in_result():
    """Bugfix regression: ``shutdown()`` used to fail only jobs nobody
    was waiting on — a consumer thread already *blocked* inside
    ``stream()``/``result()`` kept pumping forever (worse: it could
    misread the deliberately-exiting workers' closed pipes as deaths
    and respawn workers into the pool being dismantled).  Shutdown
    must raise promptly in the blocked consumer, with zero recorded
    worker deaths."""
    import threading
    import time

    options = PipelineOptions(jobs=2, granularity="function")
    engine = ServingEngine(options).start()
    job = engine.submit()  # the whole corpus: nowhere near done
    outcome = []

    def consume():
        try:
            job.result()
            outcome.append("completed")
        except RuntimeError as exc:
            outcome.append(exc)

    consumer = threading.Thread(target=consume, daemon=True)
    consumer.start()
    time.sleep(0.5)  # let the consumer block in the pump loop
    started = time.monotonic()
    engine.shutdown()
    consumer.join(timeout=15)
    woken_after = time.monotonic() - started
    assert not consumer.is_alive(), "consumer never woke from shutdown"
    assert woken_after < 15
    assert outcome and isinstance(outcome[0], RuntimeError)
    assert "shut down" in str(outcome[0])
    # The exiting workers' EOFs were not misread as deaths.
    assert engine.worker_deaths == 0
    assert not engine.running
    # And the engine restarts cleanly after the concurrent teardown.
    with engine:
        report = engine.serve(KEYS[:2])
    assert len(report.programs) == 2


def test_engine_restarts_after_shutdown():
    options = PipelineOptions(jobs=2)
    engine = ServingEngine(options)
    engine.start()
    assert engine.running
    engine.shutdown()
    assert not engine.running
    engine.shutdown()  # idempotent
    with engine:
        report = engine.serve(KEYS[:2])
    assert not engine.running
    assert len(report.programs) == 2


# -- start methods ------------------------------------------------------------


@pytest.mark.parametrize("method", sorted(
    set(multiprocessing.get_all_start_methods()) & {"fork", "spawn"}
))
def test_batch_start_methods_agree(method):
    """fork and spawn workers produce the same report — workers inherit
    nothing from the parent they depend on."""
    serial = detect_corpus(jobs=1, keys=KEYS[:3])
    sharded = detect_corpus(jobs=2, keys=KEYS[:3],
                            granularity="function",
                            start_method=method)
    assert sharded.programs == serial.programs
    assert sharded.fingerprint() == serial.fingerprint()


@pytest.mark.parametrize("method", sorted(
    set(multiprocessing.get_all_start_methods()) & {"fork", "spawn"}
))
def test_serving_start_methods_agree(method):
    options = PipelineOptions(jobs=2, granularity="function",
                              start_method=method)
    with ServingEngine(options) as engine:
        report = engine.serve(KEYS[:3])
    assert report.fingerprint() == detect_corpus(
        jobs=1, keys=KEYS[:3]
    ).fingerprint()


# -- dispatch prefetch --------------------------------------------------------


def test_prefetch_depths_serve_identical_reports():
    """Any prefetch window serves the exact serial report — prefetching
    moves latency only, never results — and the engine's dispatch-gap
    meter actually sampled the run."""
    serial = detect_corpus(jobs=1, keys=KEYS[:6])
    for prefetch in (0, 1, 3):
        options = PipelineOptions(jobs=2, granularity="function",
                                  prefetch_units=prefetch)
        with ServingEngine(options) as engine:
            report = engine.serve(KEYS[:6])
            assert engine.idle_samples > 0
            assert engine.mean_dispatch_gap() >= 0.0
        assert report.programs == serial.programs
        assert report.fingerprint() == serial.fingerprint()


def test_prefetch_window_never_exceeds_its_depth():
    """The dispatcher fills each worker's queue to at most
    ``1 + prefetch_units``, and with prefetching on, some worker is
    observed holding more than the in-flight unit."""
    prefetch = 3
    options = PipelineOptions(jobs=2, granularity="function",
                              prefetch_units=prefetch)
    deepest = 0
    with ServingEngine(options) as engine:
        job = engine.submit(KEYS[:8])
        for _ in job.stream():
            for handle in engine._workers.values():
                deepest = max(deepest, len(handle.assignments))
        report = job.result()
    assert deepest <= 1 + prefetch
    assert deepest >= 2  # prefetching observably queued ahead
    assert report.fingerprint() == detect_corpus(
        jobs=1, keys=KEYS[:8]
    ).fingerprint()


def test_killed_worker_loses_its_whole_window_and_recovers():
    """A dead worker's prefetched units — not just the in-flight one —
    are resubmitted; the report stays fingerprint-identical."""
    options = PipelineOptions(jobs=2, granularity="function",
                              prefetch_units=3)
    with ServingEngine(options) as engine:
        job = engine.submit(KEYS[:5])
        stream = job.stream()
        # Kill a worker observed holding queued work beyond its
        # in-flight unit — choosing a fixed worker races the
        # dispatcher, which may have just drained that window.
        victim = None
        for _ in stream:
            candidate = max(engine._workers.values(),
                            key=lambda handle: len(handle.assignments))
            if len(candidate.assignments) >= 2:
                victim = candidate
                break
        assert victim is not None, "no worker window ever held >1 unit"
        lost = len(victim.assignments)
        victim.process.kill()
        list(stream)
        report = job.result()
        assert engine.worker_deaths >= 1
        assert lost >= 2  # in-flight plus queued work when it died
    assert report.failures == ()
    assert report.fingerprint() == detect_corpus(
        jobs=1, keys=KEYS[:5]
    ).fingerprint()
