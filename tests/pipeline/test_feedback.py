"""Tests for the persistent solver feedback store.

Five contracts:

* **round trip** — a store survives JSON serialization byte-for-byte
  (fingerprint verified on load, tampering fails loudly, load errors
  carry the path / found-vs-expected / a fix hint);
* **canonical merge** — :meth:`SolverStats.merge` and
  :meth:`OrderObs.merge` are commutative and associative (also after
  :meth:`FeedbackStore.decay`), so a corpus aggregate is independent
  of unit arrival order, and the persisted artifact is byte-identical
  between ``jobs=1`` and ``jobs=N`` (fork and spawn, program and
  function granularity);
* **never worse** — feedback-ordered detection costs at most as many
  constraint evaluations as the order that produced the feedback, on
  EP and mri-q, through the full registry/store path;
* **paired winner** — exploration's measured order rows supersede the
  replay heuristic, and a candidate is adopted only when Pareto-better
  on exact paired savings (no shape bucket regresses, total positive);
* **invisible exploration** — an explored run's report is
  fingerprint-identical to the plain run and its artifact is
  byte-identical across sharding shapes.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import SolverContext, SolverStats, detect
from repro.idioms.detect import find_reductions_in_function
from repro.idioms.registry import IdiomRegistry
from repro.pipeline.feedback import (
    FEEDBACK_COMPATIBLE_VERSIONS,
    FEEDBACK_VERSION,
)
from repro.pipeline import (
    ExplorationPolicy,
    FeedbackStore,
    JobClass,
    OrderObs,
    PipelineOptions,
    ServingEngine,
    canonical_orders,
    detect_corpus,
    feedback_from_report,
    load_feedback,
    resolve_feedback_options,
    save_feedback,
)
from repro.workloads import corpus_keys, program

KEYS = corpus_keys()
SMALL = [key for key in KEYS if key[1] == "Parboil"]


# -- stats strategies ---------------------------------------------------------

LABELS = ("header", "acc", "idx", "base", "update")


def _stats_strategy():
    counters = st.integers(min_value=0, max_value=1000)
    label = st.sampled_from(LABELS)
    bound = st.frozensets(st.sampled_from(LABELS), max_size=3)
    pair = st.tuples(st.integers(min_value=1, max_value=50),
                     st.integers(min_value=0, max_value=500))
    return st.builds(
        SolverStats,
        assignments_tried=counters,
        partial_rejections=counters,
        solutions=counters,
        fallbacks_to_universe=counters,
        constraint_evals=counters,
        proposal_cache_hits=counters,
        prefix_reuses=counters,
        candidates_per_label=st.dictionaries(label, counters, max_size=4),
        candidates_per_prefix=st.dictionaries(
            st.tuples(label, bound), pair, max_size=6
        ),
    )


def _obs_strategy():
    counters = st.integers(min_value=0, max_value=1000)
    return st.builds(
        OrderObs,
        functions=st.integers(min_value=1, max_value=50),
        constraint_evals=counters,
        baseline_evals=counters,
        solutions=counters,
        assignments_tried=counters,
        partial_rejections=counters,
    )


def _orders_strategy():
    key = st.tuples(
        st.sampled_from(("for-loop", "scalar-reduction", "histogram")),
        st.permutations(LABELS).map(tuple),
        st.sampled_from(("d1s0", "d2s1", "d3s3")),
    )
    return st.dictionaries(key, _obs_strategy(), max_size=4)


def _store_strategy():
    return st.builds(
        FeedbackStore,
        specs=st.dictionaries(
            st.sampled_from(("for-loop", "scalar-reduction", "histogram")),
            _stats_strategy(),
            max_size=3,
        ),
        orders=_orders_strategy(),
    )


# -- round trip ---------------------------------------------------------------


@given(_store_strategy())
@settings(max_examples=50, deadline=None)
def test_feedback_json_round_trip(store):
    data = json.loads(json.dumps(store.to_jsonable()))
    rebuilt = FeedbackStore.from_jsonable(data)
    assert rebuilt.canonical() == store.canonical()
    assert rebuilt.fingerprint() == store.fingerprint()


def test_feedback_file_round_trip_and_bytes(tmp_path):
    report = detect_corpus(jobs=1, keys=SMALL[:3])
    store = feedback_from_report(report)
    assert store  # the run recorded per-spec statistics
    path_a = tmp_path / "a.json"
    path_b = tmp_path / "b.json"
    save_feedback(store, str(path_a))
    save_feedback(load_feedback(str(path_a)), str(path_b))
    assert path_a.read_bytes() == path_b.read_bytes()


def test_feedback_load_rejects_tampering_and_bad_version(tmp_path):
    report = detect_corpus(jobs=1, keys=SMALL[:2])
    store = feedback_from_report(report)
    path = tmp_path / "fb.json"
    save_feedback(store, str(path))

    data = json.loads(path.read_text())
    name = next(iter(data["specs"]))
    data["specs"][name]["constraint_evals"] += 1
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError, match="fingerprint"):
        load_feedback(str(path))

    data["version"] = 99
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError, match="version"):
        load_feedback(str(path))

    # Deleting the mismatching fingerprint must not bypass the check.
    data["version"] = FEEDBACK_VERSION
    del data["fingerprint"]
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError, match="missing its fingerprint"):
        load_feedback(str(path))


# -- merge algebra ------------------------------------------------------------


@given(_stats_strategy(), _stats_strategy())
@settings(max_examples=50, deadline=None)
def test_solver_stats_merge_is_commutative(a, b):
    ab = a.copy().merge(b)
    ba = b.copy().merge(a)
    assert ab.canonical() == ba.canonical()


@given(_stats_strategy(), _stats_strategy(), _stats_strategy())
@settings(max_examples=50, deadline=None)
def test_solver_stats_merge_is_associative(a, b, c):
    left = a.copy().merge(b).merge(c)
    right = a.copy().merge(b.copy().merge(c))
    assert left.canonical() == right.canonical()


@given(st.lists(st.integers(min_value=0, max_value=5),
                min_size=2, max_size=5, unique=True))
@settings(max_examples=10, deadline=None)
def test_store_is_independent_of_program_arrival_order(indices):
    report = detect_corpus(jobs=1, keys=SMALL)
    programs = [report.programs[i] for i in indices]
    forward = FeedbackStore()
    backward = FeedbackStore()
    for digest in programs:
        for name, stats in digest.spec_stats.items():
            forward.merge_stats(name, stats)
    for digest in reversed(programs):
        for name, stats in digest.spec_stats.items():
            backward.merge_stats(name, stats)
    assert forward.fingerprint() == backward.fingerprint()


# -- determinism across sharding ----------------------------------------------


def test_feedback_artifact_byte_identical_across_jobs_and_granularity(
    tmp_path,
):
    """The acceptance criterion's sharding half, in miniature.

    ``jobs=1`` vs ``jobs=2``, program vs function granularity: same
    fingerprinted report, byte-identical feedback artifact (the full
    matrix, spawn included, runs in ``benchmarks/bench_feedback.py``).
    """
    runs = {
        "serial": detect_corpus(jobs=1, extended=True, keys=SMALL),
        "sharded": detect_corpus(jobs=2, extended=True, keys=SMALL),
        "functions": detect_corpus(jobs=2, extended=True, keys=SMALL,
                                   granularity="function"),
    }
    blobs = {}
    for name, report in runs.items():
        assert report.fingerprint() == runs["serial"].fingerprint()
        path = tmp_path / f"{name}.json"
        save_feedback(feedback_from_report(report), str(path))
        blobs[name] = path.read_bytes()
    assert blobs["sharded"] == blobs["serial"]
    assert blobs["functions"] == blobs["serial"]


def test_feedback_survives_a_report_json_round_trip(tmp_path):
    """spec_stats ride along in the report JSON, so a saved report is
    still a valid feedback source after load_report."""
    from repro.pipeline import load_report, save_report

    report = detect_corpus(jobs=1, keys=SMALL[:3])
    path = tmp_path / "report.json"
    save_report(report, str(path))
    rebuilt = feedback_from_report(load_report(str(path)))
    assert rebuilt.fingerprint() == feedback_from_report(
        report
    ).fingerprint()
    assert rebuilt  # not a silently-empty store


def test_feedback_consumption_is_deterministic_across_jobs(tmp_path):
    path = tmp_path / "fb.json"
    save_feedback(
        feedback_from_report(detect_corpus(jobs=1, keys=SMALL)), str(path)
    )
    warm1 = detect_corpus(jobs=1, keys=SMALL, feedback_from=str(path))
    warm2 = detect_corpus(jobs=2, keys=SMALL, feedback_from=str(path),
                          granularity="function")
    assert warm1.fingerprint() == warm2.fingerprint()


# -- consumption semantics ----------------------------------------------------


def test_options_normalize_spec_orders_and_resolution(tmp_path):
    orders = {"histogram": ("header", "iterator", "base", "idx",
                            "hist_load", "hist_store", "update")}
    options = PipelineOptions(spec_orders=orders)
    assert options.spec_orders == canonical_orders(orders)

    # Resolution folds a feedback artifact into plain spec orders so
    # workers never re-read the file.
    report = detect_corpus(jobs=1, keys=SMALL[:2])
    path = tmp_path / "fb.json"
    save_feedback(feedback_from_report(report), str(path))
    resolved = resolve_feedback_options(
        PipelineOptions(feedback_from=str(path))
    )
    assert resolved.spec_orders is not None or resolved.feedback_from is None


def test_store_keeps_unmeasured_specs_untouched():
    registry = IdiomRegistry()
    store = FeedbackStore()
    assert store.spec_orders(registry) == {}
    assert store.order_for(registry.spec("histogram")) is None


def test_apply_orders_rejects_non_permutations():
    from repro.constraints import SpecFileError

    registry = IdiomRegistry()
    with pytest.raises(SpecFileError, match="permutation"):
        registry.apply_orders({"histogram": ("header", "iterator")})


def test_apply_orders_keeps_base_prefix_and_replay():
    """A reorder of an extending spec keeps the base order as prefix,
    so the solver's prefix replay stays available."""
    registry = IdiomRegistry()
    scalar = registry.spec("scalar-reduction")
    scrambled = tuple(reversed(scalar.label_order))
    registry.apply_orders({"scalar-reduction": scrambled})
    reordered = registry.spec("scalar-reduction")
    base = reordered.base
    assert base is not None
    assert reordered.label_order[:len(base.label_order)] == base.label_order
    # Solutions are unchanged by construction.
    module = program("mri-q").fresh_module()
    function = module.get_function("compute_q")
    fr = find_reductions_in_function(function, module, registry=registry)
    baseline = find_reductions_in_function(function, module,
                                           registry=IdiomRegistry())
    assert [s.name for s in fr.scalars] == [s.name for s in baseline.scalars]


def test_apply_orders_rebuilds_extenders_when_base_reorders():
    registry = IdiomRegistry()
    forloop = registry.spec("for-loop")
    new_order = forloop.label_order[::-1]
    registry.apply_orders({"for-loop": new_order})
    assert registry.spec("for-loop").label_order == new_order
    for name in ("scalar-reduction", "histogram", "dot-product"):
        spec = registry.spec(name)
        assert spec.base is registry.spec("for-loop")
        assert spec.label_order[:len(new_order)] == new_order


@pytest.mark.parametrize("workload,function", [
    ("EP", "gaussian_pairs"), ("mri-q", "compute_q"),
])
def test_feedback_ordered_detection_never_worse_than_curated(
    workload, function, tmp_path
):
    """The satellite property: feedback-ordered detection costs at most
    the curated order's constraint evals on EP and mri-q — through the
    full record → persist → load → reorder → detect cycle."""
    module = program(workload).fresh_module()
    target = module.get_function(function)

    curated = find_reductions_in_function(target, module,
                                          registry=IdiomRegistry())
    store = FeedbackStore()
    for name, stats in curated.spec_stats.items():
        store.merge_stats(name, stats)
    path = tmp_path / "fb.json"
    save_feedback(store, str(path))

    registry = IdiomRegistry()
    registry.apply_orders(load_feedback(str(path)).spec_orders(registry))
    fresh_module = program(workload).fresh_module()
    warmed = find_reductions_in_function(
        fresh_module.get_function(function), fresh_module,
        registry=registry,
    )
    assert [s.name for s in warmed.scalars] == [
        s.name for s in curated.scalars
    ]
    assert [h.name for h in warmed.histograms] == [
        h.name for h in curated.histograms
    ]
    assert warmed.stats.constraint_evals <= curated.stats.constraint_evals


# -- the serving engine -------------------------------------------------------


def test_serving_accumulates_and_snapshots_feedback():
    options = PipelineOptions(jobs=2, granularity="function")
    with ServingEngine(options) as engine:
        report = engine.serve(SMALL)
        snapshot = engine.feedback_snapshot()
    assert snapshot
    assert snapshot.fingerprint() == feedback_from_report(
        report
    ).fingerprint()


def test_serving_self_tune_stays_fingerprint_identical():
    """Self-tuning serving: the refreshed orders reproduce the orders
    that generated the feedback, so every request of a converged
    session matches the batch engine bit-for-bit."""
    options = PipelineOptions(jobs=2, granularity="function",
                              feedback_refresh=True)
    batch = detect_corpus(jobs=1, keys=SMALL)
    with ServingEngine(options) as engine:
        first = engine.serve(SMALL)
        second = engine.serve(SMALL)
        assert engine.feedback_refreshes >= 1
    assert first.fingerprint() == batch.fingerprint()
    assert second.fingerprint() == batch.fingerprint()


def test_serving_self_tune_from_static_artifact_keeps_detections(tmp_path):
    """A self-tuning session warmed from a *static-order* artifact may
    refresh into different (better) orders mid-session — search effort
    moves, detections must not, and the refresh must be able to reach
    the authored orders even though the workers booted reordered."""
    from repro.constraints import suggest_order

    registry = IdiomRegistry()
    static = {e.name: suggest_order(e.spec) for e in registry}
    cold = detect_corpus(jobs=1, keys=SMALL, spec_orders=static)
    path = tmp_path / "static.json"
    save_feedback(feedback_from_report(cold), str(path))

    options = PipelineOptions(jobs=2, feedback_from=str(path),
                              feedback_refresh=True)
    with ServingEngine(options) as engine:
        first = engine.serve(SMALL)
        second = engine.serve(SMALL)
        refreshes = engine.feedback_refreshes
    assert refreshes >= 1
    batch = detect_corpus(jobs=1, keys=SMALL, feedback_from=str(path))
    assert first.fingerprint() == batch.fingerprint()
    assert second.fingerprint(effort=False) == batch.fingerprint(
        effort=False
    )


def test_serving_warm_start_from_artifact(tmp_path):
    path = tmp_path / "fb.json"
    save_feedback(
        feedback_from_report(detect_corpus(jobs=1, keys=SMALL)), str(path)
    )
    options = PipelineOptions(jobs=2, feedback_from=str(path))
    batch = detect_corpus(jobs=1, keys=SMALL, feedback_from=str(path))
    with ServingEngine(options) as engine:
        served = engine.serve(SMALL, priority=JobClass.INTERACTIVE)
    assert served.fingerprint() == batch.fingerprint()


def test_serving_rejects_bad_feedback_artifact(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{\"version\": 1, \"specs\": 0}")
    engine = ServingEngine(PipelineOptions(jobs=2,
                                           feedback_from=str(path)))
    with pytest.raises(ValueError):
        engine.submit(SMALL[:1])
    assert not engine.running  # the failed submit leaked no workers


# -- failure surfacing --------------------------------------------------------


def test_run_discovery_renders_unit_failures():
    from repro.evaluation.discovery import run_discovery
    from repro.pipeline import CorpusReport, UnitFailure

    report = detect_corpus(jobs=1, baselines=True, suites=("Parboil",))
    victim = report.programs[0]
    partial = CorpusReport(
        programs=tuple(p for p in report.programs if p is not victim),
        jobs=report.jobs,
        failures=(UnitFailure(name=victim.name, suite=victim.suite,
                              function=None, error="worker died",
                              attempts=3),),
    )
    result = run_discovery("Parboil", report=partial)
    assert not result.ok
    assert result.failures and result.failures[0].name == victim.name
    failed_rows = [row for row in result.rows if row.failed]
    assert [row.benchmark for row in failed_rows] == [victim.name]
    rendered = result.render()
    assert "FAILED" in rendered
    assert "worker died" in rendered


def test_cli_failure_exit_policy():
    from repro.__main__ import _failure_exit
    from repro.pipeline import UnitFailure

    failure = UnitFailure(name="sad", suite="NAS", function=None,
                          error="worker died", attempts=3)
    assert _failure_exit((), allow_failures=False) == 0
    assert _failure_exit((failure,), allow_failures=True) == 0
    assert _failure_exit((failure,), allow_failures=False) == 3
    assert _failure_exit((failure,), allow_failures=False,
                         describe=False) == 3


# -- decay & retention --------------------------------------------------------


@given(_store_strategy())
@settings(max_examples=25, deadline=None)
def test_decay_keep_one_is_the_identity(store):
    before = store.fingerprint()
    assert store.decay(1.0).fingerprint() == before


@given(_store_strategy())
@settings(max_examples=25, deadline=None)
def test_decay_keep_zero_empties_the_store(store):
    store.decay(0.0)
    assert not store
    assert store.canonical() == FeedbackStore().canonical()


@pytest.mark.parametrize("keep", [-0.1, 1.5, 2.0])
def test_decay_rejects_keep_out_of_range(keep):
    with pytest.raises(ValueError, match="keep"):
        FeedbackStore().decay(keep)


def test_decay_drops_rows_that_reach_zero():
    store = FeedbackStore(orders={
        ("for-loop", LABELS, "d1s0"): OrderObs(functions=1,
                                               constraint_evals=3),
    })
    store.decay(0.5)
    assert store.orders == {}
    assert not store


@given(_store_strategy(), _store_strategy(),
       st.sampled_from((0.25, 0.5, 1.0)))
@settings(max_examples=25, deadline=None)
def test_decayed_stores_merge_commutatively(a, b, keep):
    """Retention composes with aggregation: stores that went through
    decay still merge order-independently (the property the serving
    window and multi-shard recording rely on)."""
    a.decay(keep)
    b.decay(keep)
    ab = a.copy().merge(b)
    ba = b.copy().merge(a)
    assert ab.canonical() == ba.canonical()
    assert ab.fingerprint() == ba.fingerprint()


@given(_store_strategy(), _store_strategy(), _store_strategy(),
       st.sampled_from((0.25, 0.5, 1.0)))
@settings(max_examples=25, deadline=None)
def test_decayed_stores_merge_associatively(a, b, c, keep):
    for store in (a, b, c):
        store.decay(keep)
    left = a.copy().merge(b).merge(c)
    right = a.copy().merge(b.copy().merge(c))
    assert left.canonical() == right.canonical()


# -- paired winner selection --------------------------------------------------


def _paired(evals, baseline, functions=1):
    return OrderObs(functions=functions, constraint_evals=evals,
                    baseline_evals=baseline)


def _transposed(order, i):
    swapped = list(order)
    swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
    return tuple(swapped)


def test_order_for_adopts_a_strictly_better_paired_candidate():
    registry = IdiomRegistry()
    spec = registry.spec("for-loop")
    incumbent = spec.label_order
    candidate = _transposed(incumbent, len(incumbent) - 2)
    store = FeedbackStore()
    store.merge_order_obs((spec.name, incumbent, "d1s0"),
                          _paired(100, 100))
    store.merge_order_obs((spec.name, candidate, "d1s0"),
                          _paired(90, 100))
    assert store.order_for(spec) == candidate
    assert store.spec_orders(registry)[spec.name] == candidate


def test_order_for_vetoes_a_candidate_with_any_losing_bucket():
    """Pareto, not net: a candidate that wins overall but loses one
    shape bucket is rejected — adoption must never regress a shape."""
    registry = IdiomRegistry()
    spec = registry.spec("for-loop")
    candidate = _transposed(spec.label_order, len(spec.label_order) - 2)
    store = FeedbackStore()
    store.merge_order_obs((spec.name, candidate, "d1s0"),
                          _paired(50, 100))   # saves 50 here
    store.merge_order_obs((spec.name, candidate, "d2s1"),
                          _paired(110, 100))  # loses 10 there
    assert store.order_for(spec) == spec.label_order
    assert store.spec_orders(registry) == {}


def test_order_for_rejects_a_tie():
    registry = IdiomRegistry()
    spec = registry.spec("for-loop")
    candidate = _transposed(spec.label_order, len(spec.label_order) - 2)
    store = FeedbackStore()
    store.merge_order_obs((spec.name, candidate, "d1s0"),
                          _paired(100, 100))
    assert store.order_for(spec) == spec.label_order
    assert store.spec_orders(registry) == {}


def test_order_for_prefers_the_largest_paired_saving():
    registry = IdiomRegistry()
    spec = registry.spec("for-loop")
    small = _transposed(spec.label_order, len(spec.label_order) - 2)
    large = _transposed(spec.label_order, len(spec.label_order) - 3)
    store = FeedbackStore()
    store.merge_order_obs((spec.name, small, "d1s0"), _paired(90, 100))
    store.merge_order_obs((spec.name, large, "d1s0"), _paired(50, 100))
    assert store.order_for(spec) == large


def test_order_for_ignores_non_permutation_rows():
    registry = IdiomRegistry()
    spec = registry.spec("for-loop")
    bogus = spec.label_order[:-1]  # wrong label set entirely
    store = FeedbackStore()
    store.merge_order_obs((spec.name, bogus, "d1s0"), _paired(10, 100))
    assert store.order_for(spec) == spec.label_order
    assert store.spec_orders(registry) == {}


def test_measured_orders_supersede_the_replay_heuristic():
    """Once any order row exists for a spec, the replayed-prefix layer
    is out of the loop: exact paired measurements decide, and a store
    whose measurements all lose keeps the incumbent even though its
    spec stats alone would have suggested a reorder."""
    module = program("mri-q").fresh_module()
    target = module.get_function("compute_q")
    curated = find_reductions_in_function(target, module,
                                          registry=IdiomRegistry())
    store = FeedbackStore()
    for name, stats in curated.spec_stats.items():
        store.merge_stats(name, stats)
    registry = IdiomRegistry()
    replayed = store.spec_orders(registry)
    assert replayed  # the replay layer does derive something
    for name in replayed:
        spec = registry.spec(name)
        store.merge_order_obs(
            (name, _transposed(spec.label_order, len(spec.label_order) - 2),
             "d1s0"),
            _paired(200, 100),  # the measured candidate loses
        )
        assert store.order_for(spec) == spec.label_order
    assert not any(name in store.spec_orders(registry)
                   for name in replayed)


# -- exploration --------------------------------------------------------------


def test_exploration_policy_is_deterministic_and_bounded():
    policy = ExplorationPolicy(epsilon=0.5, seed=3)
    draws = [policy.explores("Parboil", "mri-q", f"f{i}")
             for i in range(64)]
    assert draws == [policy.explores("Parboil", "mri-q", f"f{i}")
                     for i in range(64)]
    assert any(draws) and not all(draws)
    assert not any(
        ExplorationPolicy(epsilon=0.0, seed=3).explores("a", "b", f"f{i}")
        for i in range(64)
    )
    assert all(
        ExplorationPolicy(epsilon=1.0, seed=3).explores("a", "b", f"f{i}")
        for i in range(64)
    )


def test_explored_run_keeps_the_report_fingerprint_and_records_orders(
    tmp_path,
):
    """The tentpole acceptance in miniature: exploration at ε=0.5 on
    the Parboil slice records per-order observations, never changes
    the report fingerprint (digests come from the incumbent run), and
    the artifact is byte-identical across jobs and granularity."""
    base = detect_corpus(jobs=1, keys=SMALL)
    runs = {
        "serial": detect_corpus(jobs=1, keys=SMALL,
                                explore=0.5, explore_seed=3),
        "sharded": detect_corpus(jobs=2, keys=SMALL,
                                 explore=0.5, explore_seed=3),
        "functions": detect_corpus(jobs=2, keys=SMALL,
                                   explore=0.5, explore_seed=3,
                                   granularity="function"),
    }
    blobs = {}
    for name, report in runs.items():
        assert report.fingerprint() == base.fingerprint()
        path = tmp_path / f"{name}.json"
        save_feedback(feedback_from_report(report), str(path))
        blobs[name] = path.read_bytes()
    assert blobs["sharded"] == blobs["serial"]
    assert blobs["functions"] == blobs["serial"]

    store = feedback_from_report(runs["serial"])
    assert store.orders  # the seed actually sampled this slice
    incumbent = IdiomRegistry().current_orders()
    candidate_rows = 0
    for (name, order, bucket), obs in store.orders.items():
        if order == incumbent[name]:
            # Incumbent rows are self-paired: baseline == measured.
            assert obs.saving() == 0
        else:
            candidate_rows += 1
            assert obs.functions >= 1
    assert candidate_rows  # at least one perturbed order was measured


def test_order_observations_survive_a_report_json_round_trip(tmp_path):
    from repro.pipeline import load_report, save_report

    report = detect_corpus(jobs=1, keys=SMALL[:3],
                           explore=1.0, explore_seed=3)
    direct = feedback_from_report(report)
    assert direct.orders
    path = tmp_path / "report.json"
    save_report(report, str(path))
    rebuilt = feedback_from_report(load_report(str(path)))
    assert rebuilt.orders == direct.orders
    assert rebuilt.fingerprint() == direct.fingerprint()


def test_serving_explores_and_snapshots_order_observations():
    options = PipelineOptions(jobs=2, granularity="function",
                              explore=0.5, explore_seed=3)
    batch = detect_corpus(jobs=1, keys=SMALL)
    with ServingEngine(options) as engine:
        report = engine.serve(SMALL)
        snapshot = engine.feedback_snapshot()
    assert report.fingerprint() == batch.fingerprint()
    assert snapshot.orders
    assert snapshot.fingerprint() == feedback_from_report(
        detect_corpus(jobs=1, keys=SMALL, explore=0.5, explore_seed=3)
    ).fingerprint()


# -- artifact versioning ------------------------------------------------------


def test_version_2_artifacts_still_load(tmp_path):
    """An exploration-free artifact downgraded to version 2 loads with
    a verifying fingerprint — the v3 canonical form collapses to the
    v2 tuple when no order rows exist."""
    assert 2 in FEEDBACK_COMPATIBLE_VERSIONS
    store = feedback_from_report(detect_corpus(jobs=1, keys=SMALL[:2]))
    path = tmp_path / "v2.json"
    save_feedback(store, str(path))
    data = json.loads(path.read_text())
    assert "orders" not in data  # the key is omitted, not empty
    data["version"] = 2
    path.write_text(json.dumps(data))
    rebuilt = load_feedback(str(path))
    assert rebuilt.fingerprint() == store.fingerprint()


def test_load_feedback_errors_carry_path_versions_and_hint(tmp_path):
    store = feedback_from_report(detect_corpus(jobs=1, keys=SMALL[:1]))
    path = tmp_path / "fb.json"
    save_feedback(store, str(path))
    data = json.loads(path.read_text())
    data["version"] = 99
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError) as excinfo:
        load_feedback(str(path))
    message = str(excinfo.value)
    assert str(path) in message
    assert "99" in message
    assert ", ".join(map(str, FEEDBACK_COMPATIBLE_VERSIONS)) in message
    assert "hint:" in message

    path.write_text("{not json")
    with pytest.raises(ValueError, match="not valid JSON") as excinfo:
        load_feedback(str(path))
    assert str(path) in str(excinfo.value)
    assert "hint:" in str(excinfo.value)
