"""Tests for the socket gateway in front of the serving engine.

The gateway contract: anything served over the socket is
fingerprint-identical to ``detect_corpus(jobs=1)``; admission control
answers saturation with a structured reject-plus-retry-after frame
instead of queueing; and a client that cancels or disconnects
mid-stream leaves no orphaned work in the engine.
"""

import socket
import struct
import time

import pytest

from repro.pipeline import (
    GatewayClient,
    GatewayError,
    GatewayRejected,
    GatewayRequestFailed,
    GatewayServer,
    JobCancelled,
    PipelineOptions,
    detect_corpus,
)
from repro.pipeline.gateway import (
    FRAME_HEADER,
    MAX_FRAME_BYTES,
    encode_frame,
    read_frame,
)
from repro.workloads import corpus_keys

KEYS = corpus_keys()

SERIAL = None


def serial_report():
    """The jobs=1 whole-corpus reference, computed once."""
    global SERIAL
    if SERIAL is None:
        SERIAL = detect_corpus(jobs=1)
    return SERIAL


def serial_subset(keys):
    """The reference digests for a corpus slice, in canonical order."""
    wanted = set(keys)
    return tuple(
        p for p in serial_report().programs if p.key in wanted
    )


@pytest.fixture(scope="module")
def server():
    options = PipelineOptions(jobs=2, granularity="function")
    with GatewayServer(options, port=0) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with GatewayClient(port=server.port, timeout=180.0) as c:
        yield c


# -- frame codec --------------------------------------------------------------


def test_frame_codec_roundtrip_over_a_socketpair():
    left, right = socket.socketpair()
    try:
        payload = {"op": "submit", "id": 3, "keys": [["EP", "NAS"]],
                   "priority": "interactive"}
        left.sendall(encode_frame(payload))
        assert read_frame(right) == payload
        # Frames are canonical-form JSON: stable bytes for stable input.
        assert encode_frame(payload) == encode_frame(dict(payload))
    finally:
        left.close()
        right.close()


def test_oversized_frame_header_is_refused():
    left, right = socket.socketpair()
    try:
        left.sendall(FRAME_HEADER.pack(MAX_FRAME_BYTES + 1))
        with pytest.raises(GatewayError, match="oversized"):
            read_frame(right)
    finally:
        left.close()
        right.close()


def test_truncated_stream_is_a_clean_error():
    left, right = socket.socketpair()
    try:
        left.sendall(encode_frame({"op": "ping"})[:3])
        left.close()
        with pytest.raises(GatewayError, match="closed"):
            read_frame(right)
    finally:
        right.close()


# -- request/response basics --------------------------------------------------


def test_ping_and_corpus_keys(client):
    client.ping()
    assert client.corpus_keys() == KEYS


def test_streamed_digests_match_the_serial_run(client):
    request = client.submit(keys=KEYS[:3], priority="interactive")
    assert request.units > 0
    digests = list(client.stream(request))
    assert sorted(d.key for d in digests) == sorted(KEYS[:3])
    report = client.result(request)
    assert report.programs == serial_subset(KEYS[:3])


def test_whole_corpus_fingerprint_identical_to_serial_batch(server,
                                                            client):
    """The acceptance criterion: a gateway-served report is
    fingerprint-identical to ``detect_corpus(jobs=1)`` — the socket
    transports digests, it never perturbs them."""
    request = client.submit()
    report = client.result(request)
    assert report.fingerprint() == serial_report().fingerprint()


def test_unknown_program_fails_the_request_not_the_connection(client):
    request = client.submit(keys=[("no-such-program", "NAS")])
    with pytest.raises(GatewayRequestFailed, match="unknown program"):
        client.result(request)
    # The connection survives a failed request.
    report = client.result(client.submit(keys=KEYS[:1]))
    assert report.programs == serial_subset(KEYS[:1])


def test_unknown_priority_fails_the_request(client):
    request = client.submit(keys=KEYS[:1], priority="urgent")
    with pytest.raises(GatewayRequestFailed, match="priority"):
        client.result(request)


def test_protocol_errors_answered_with_error_frames(server):
    sock = socket.create_connection(("127.0.0.1", server.port),
                                    timeout=60)
    try:
        sock.sendall(encode_frame({"op": "bogus"}))
        frame = read_frame(sock)
        assert frame["type"] == "error"
        assert "bogus" in frame["error"]
        sock.sendall(encode_frame({"op": "submit", "id": "not-an-int"}))
        frame = read_frame(sock)
        assert frame["type"] == "error"
        assert "integer id" in frame["error"]
    finally:
        sock.close()


def test_duplicate_in_flight_request_id_is_refused(server):
    sock = socket.create_connection(("127.0.0.1", server.port),
                                    timeout=60)
    try:
        submit = {"op": "submit", "id": 7,
                  "keys": [list(k) for k in KEYS[:2]],
                  "priority": "batch"}
        sock.sendall(encode_frame(submit))
        frame = read_frame(sock)
        assert frame["type"] == "accepted"
        sock.sendall(encode_frame(submit))
        while True:
            frame = read_frame(sock)
            if frame["type"] == "failed":
                assert "already in flight" in frame["error"]
                break
            assert frame["type"] in ("digest", "result")
        sock.sendall(encode_frame({"op": "cancel", "id": 7}))
    finally:
        sock.close()


# -- concurrent clients -------------------------------------------------------


def test_concurrent_interactive_and_batch_clients(server):
    """Two clients, two connections, two budgets: a large batch job in
    flight does not stop a separate interactive client from being
    admitted and served — and neither perturbs the other's digests."""
    batch_keys = KEYS[:20]
    inter_keys = KEYS[20:21]
    with GatewayClient(port=server.port, timeout=300.0) as batch_client:
        with GatewayClient(port=server.port,
                           timeout=300.0) as inter_client:
            batch_request = batch_client.submit(keys=batch_keys)
            inter_request = inter_client.submit(keys=inter_keys,
                                                priority="interactive")
            inter_report = inter_client.result(inter_request)
            # The batch job is large enough that it is still being
            # served when the one-program interactive request is done
            # — the two really did overlap.
            assert server.active_requests() >= 1
        batch_report = batch_client.result(batch_request)
    assert inter_report.programs == serial_subset(inter_keys)
    assert batch_report.programs == serial_subset(batch_keys)


# -- admission control --------------------------------------------------------


def test_admission_rejects_past_budget_with_retry_after():
    options = PipelineOptions(jobs=1, granularity="function")
    with GatewayServer(options, port=0, budget=5) as srv:
        with GatewayClient(port=srv.port, timeout=300.0) as saturated:
            # An idle connection is always admitted, even past the
            # budget — the budget bounds accumulation, not size.
            big = saturated.submit(keys=KEYS[:6])
            assert big.units > 5
            with pytest.raises(GatewayRejected) as excinfo:
                saturated.submit(keys=KEYS[6:7])
            rejection = excinfo.value
            assert rejection.budget == 5
            assert rejection.retry_after > 0
            assert rejection.pending_units > 5
            assert rejection.requested_units > 0
            assert srv.stats["rejections"] == 1
            # Budgets are per connection: a second client is admitted
            # and served while the first is saturated.
            with GatewayClient(port=srv.port,
                               timeout=300.0) as interactive:
                request = interactive.submit(keys=KEYS[6:7],
                                             priority="interactive")
                report = interactive.result(request)
                assert report.programs == serial_subset(KEYS[6:7])
            # Draining the backlog restores admission.
            saturated.cancel(big)
            small = saturated.submit(keys=KEYS[6:7])
            saturated.result(small)


# -- cancellation and disconnect ----------------------------------------------


def test_cancel_mid_stream_drains_queued_units(server, client):
    request = client.submit()  # the whole corpus: plenty queued
    stream = client.stream(request)
    next(stream)
    drained = client.cancel(request)
    assert drained > 0
    with pytest.raises(JobCancelled):
        client.result(request)
    # Cancellation is idempotent.
    assert client.cancel(request) == 0
    # The engine is clean and keeps serving this same connection.
    report = client.result(client.submit(keys=KEYS[:1]))
    assert report.programs == serial_subset(KEYS[:1])
    assert server.queued_units() == 0


def test_client_disconnect_cancels_engine_side_jobs(server):
    """A consumer that vanishes mid-stream must not leak work: its
    jobs are cancelled in the engine, queued units leave the
    scheduler, and the pool keeps serving other clients."""
    before = server.stats["disconnect_cancelled"]
    abrupt = GatewayClient(port=server.port, timeout=180.0)
    request = abrupt.submit()  # the whole corpus
    next(abrupt.stream(request))  # provably in flight
    abrupt.close()  # vanish without cancelling
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if (server.active_requests() == 0
                and server.queued_units() == 0):
            break
        time.sleep(0.05)
    assert server.active_requests() == 0
    assert server.queued_units() == 0
    assert server.stats["disconnect_cancelled"] >= before + 1
    assert server.engine.running
    with GatewayClient(port=server.port, timeout=180.0) as fresh:
        report = fresh.result(fresh.submit(keys=KEYS[:1]))
    assert report.programs == serial_subset(KEYS[:1])
