"""Reliability and scheduling tests for the persistent serving engine.

The reliability contract extends the serving contract: priorities,
cancellation, worker recycling, worker death and lost-unit
resubmission may change *when* work runs and *which process* runs it —
never the report.  Every recovery path must merge to a report
fingerprint-identical to ``detect_corpus(jobs=1)``, and a unit
abandoned after bounded retries must surface as a structured
:class:`UnitFailure`, not a hung job.
"""

import multiprocessing
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline import (
    JobCancelled,
    JobClass,
    PipelineOptions,
    PriorityScheduler,
    ServingEngine,
    ServingJob,
    UnitDigest,
    UnitFailure,
    WorkUnit,
    detect_corpus,
    make_shards,
    measured_weights,
    report_from_json,
    report_to_json,
)
from repro.workloads import corpus_keys

KEYS = corpus_keys()

START_METHODS = sorted(
    set(multiprocessing.get_all_start_methods()) & {"fork", "spawn"}
)


def serial(keys):
    return detect_corpus(jobs=1, keys=list(keys))


# -- weighted-fair priority scheduling ----------------------------------------


def _unit(i):
    return WorkUnit(f"p{i}", "NAS")


def test_scheduler_serves_interactive_four_to_one_under_contention():
    scheduler = PriorityScheduler()
    for i in range(40):
        scheduler.push(0, _unit(i), 0, JobClass.BATCH)
    for i in range(40, 80):
        scheduler.push(1, _unit(i), 0, JobClass.INTERACTIVE)
    first20 = [scheduler.pop()[3] for _ in range(20)]
    assert first20.count(JobClass.INTERACTIVE) == 16
    assert first20.count(JobClass.BATCH) == 4


def test_scheduler_gives_a_lone_class_the_whole_pool():
    scheduler = PriorityScheduler()
    for i in range(5):
        scheduler.push(0, _unit(i), 0, JobClass.BATCH)
    popped = [scheduler.pop() for _ in range(5)]
    assert [entry[1] for entry in popped] == [_unit(i) for i in range(5)]
    assert scheduler.pop() is None


def test_scheduler_activation_resets_stale_credit():
    """A class that idled while the other ran must not burst on the
    credit it never used: after 8 batch-only pops, a fresh interactive
    push still interleaves (4:1) instead of draining interactive-only
    until its stale pass catches up to batch's."""
    scheduler = PriorityScheduler()
    for i in range(8):
        scheduler.push(0, _unit(i), 0, JobClass.BATCH)
    for _ in range(8):
        scheduler.pop()
    for i in range(8, 12):
        scheduler.push(0, _unit(i), 0, JobClass.BATCH)
    for i in range(12, 24):
        scheduler.push(1, _unit(i), 0, JobClass.INTERACTIVE)
    first6 = [scheduler.pop()[3] for _ in range(6)]
    # Without the activation reset, interactive would have to climb
    # from its stale pass of 0 to batch's accumulated 32 — over thirty
    # interactive pops before batch ran again.  With it, batch is
    # served within the first weighted-fair cycle.
    assert JobClass.BATCH in first6
    assert first6.count(JobClass.INTERACTIVE) == 5


def test_scheduler_purge_drops_only_that_job():
    scheduler = PriorityScheduler()
    for i in range(4):
        scheduler.push(7, _unit(i), 0, JobClass.BATCH)
    for i in range(4, 6):
        scheduler.push(8, _unit(i), 0, JobClass.BATCH)
    assert scheduler.pending_for(7) == 4
    assert scheduler.purge(7) == 4
    assert scheduler.pending_for(7) == 0
    assert len(scheduler) == 2
    remaining = [scheduler.pop()[0] for _ in range(2)]
    assert remaining == [8, 8]


def test_interactive_job_overtakes_queued_batch_units():
    """The tentpole's scheduling story: with a deep batch backlog
    queued, a later interactive submit completes while most of the
    batch is still pending — and neither report changes."""
    options = PipelineOptions(jobs=2, granularity="function")
    with ServingEngine(options) as engine:
        batch = engine.submit(KEYS[:8], priority=JobClass.BATCH)
        interactive = engine.submit(KEYS[8:10],
                                    priority=JobClass.INTERACTIVE)
        interactive_report = interactive.result()
        overtaken = batch._pending_units
        batch_report = batch.result()
    # Under FIFO the interactive units would sit behind the whole
    # batch backlog and the batch job would be (nearly) drained first.
    assert overtaken > 4
    assert interactive_report.fingerprint() == serial(
        KEYS[8:10]
    ).fingerprint()
    assert batch_report.fingerprint() == serial(KEYS[:8]).fingerprint()


def test_duplicate_keys_in_a_submit_are_deduped_not_hung():
    """Regression: a repeated key used to plan two identical units
    whose second result the duplicate guard dropped — leaving the
    pending count stuck above zero and the job spinning forever."""
    options = PipelineOptions(jobs=2, granularity="function")
    with ServingEngine(options) as engine:
        job = engine.submit([KEYS[0], KEYS[1], KEYS[0]])
        assert job.keys == [KEYS[0], KEYS[1]]
        report = job.result()
    assert [d.key for d in report.programs] == [KEYS[0], KEYS[1]]
    assert report.fingerprint() == serial(KEYS[:2]).fingerprint()


def test_priority_accepts_strings_and_defaults_to_batch():
    options = PipelineOptions(jobs=1, granularity="program")
    with ServingEngine(options) as engine:
        job = engine.submit(KEYS[:1], priority="interactive")
        assert job.priority is JobClass.INTERACTIVE
        assert job.result().programs
        default = engine.submit(KEYS[:1])
        assert default.priority is JobClass.BATCH
        default.result()


# -- cancellation -------------------------------------------------------------


def test_cancel_drains_queue_and_raises_job_cancelled():
    options = PipelineOptions(jobs=2, granularity="function")
    with ServingEngine(options) as engine:
        job = engine.submit(KEYS[:8])
        queued = engine._scheduler.pending_for(job.job_id)
        assert queued > 0
        drained = job.cancel()
        assert drained == queued
        assert engine._scheduler.pending_for(job.job_id) == 0
        assert job.cancelled
        with pytest.raises(JobCancelled):
            job.result()
        with pytest.raises(JobCancelled):
            for _ in job.stream():
                pass
        # Idempotent: a second cancel is a no-op.
        assert job.cancel() == 0
        # The pool is not poisoned: later submits serve correctly,
        # including the keys the cancelled job never finished.
        report = engine.serve(KEYS[:3])
    assert report.fingerprint() == serial(KEYS[:3]).fingerprint()


def test_cancel_mid_stream_from_the_consumer_loop():
    """The CLI's ``--cancel-after`` pattern: cancelling from inside
    the stream loop raises JobCancelled on the next iteration."""
    options = PipelineOptions(jobs=2, granularity="function")
    with ServingEngine(options) as engine:
        job = engine.submit(KEYS[:6])
        streamed = 0
        with pytest.raises(JobCancelled):
            for _ in job.stream():
                streamed += 1
                job.cancel()
        assert streamed == 1
        report = engine.serve(KEYS[4:6])
    assert report.fingerprint() == serial(KEYS[4:6]).fingerprint()


def test_cancelled_jobs_in_flight_results_are_dropped():
    """Units already on a worker when the job is cancelled complete
    there, but their results are dropped by the router — they never
    surface on another job."""
    options = PipelineOptions(jobs=2, granularity="function")
    with ServingEngine(options) as engine:
        job = engine.submit(KEYS[:5])
        in_flight = sum(
            1 for h in engine._workers.values()
            if h.assignment is not None and h.assignment[0] == job.job_id
        )
        assert in_flight > 0
        job.cancel()
        report = engine.serve(KEYS[5:7])
        assert [d.key for d in report.programs] == KEYS[5:7]
    assert report.fingerprint() == serial(KEYS[5:7]).fingerprint()


# -- chaos: killed workers ----------------------------------------------------


@pytest.mark.parametrize("method", START_METHODS)
def test_killed_worker_mid_job_preserves_the_fingerprint(method):
    """The acceptance criterion: kill a worker mid-job under fork AND
    spawn; the lost unit is resubmitted and the served report is
    fingerprint-identical to the serial batch run."""
    options = PipelineOptions(jobs=2, granularity="function",
                              start_method=method)
    with ServingEngine(options) as engine:
        job = engine.submit(KEYS[:5])
        stream = job.stream()
        next(stream)  # ensure the job is genuinely mid-flight
        victim = next(iter(engine._workers.values()))
        victim.process.kill()
        list(stream)
        report = job.result()
        assert engine.worker_deaths >= 1
        # The pool was repaired to full strength.
        assert len(engine._workers) == engine.workers
        assert all(
            h.process.is_alive() for h in engine._workers.values()
        )
    assert report.failures == ()
    assert report.fingerprint() == serial(KEYS[:5]).fingerprint()


def test_killing_every_worker_still_completes_the_job():
    options = PipelineOptions(jobs=2, granularity="function")
    with ServingEngine(options) as engine:
        job = engine.submit(KEYS[:4])
        for handle in list(engine._workers.values()):
            handle.process.kill()
        report = job.result()
        assert engine.worker_deaths >= 2
    assert report.failures == ()
    assert report.fingerprint() == serial(KEYS[:4]).fingerprint()


@settings(max_examples=3, deadline=None)
@given(data=st.data())
def test_chaos_property_any_subset_and_kill_point(data):
    """Property form: any subset, any kill point — same report."""
    keys = data.draw(
        st.lists(st.sampled_from(KEYS[:12]), min_size=2, max_size=5,
                 unique=True),
        label="keys",
    )
    keys.sort(key=KEYS.index)
    kill_after = data.draw(
        st.integers(min_value=0, max_value=len(keys) - 1),
        label="kill_after",
    )
    options = PipelineOptions(jobs=2, granularity="function")
    with ServingEngine(options) as engine:
        job = engine.submit(keys)
        streamed = 0
        victim = next(iter(engine._workers.values()))
        for _ in job.stream():
            streamed += 1
            if streamed == kill_after + 1 and victim.process.is_alive():
                victim.process.kill()
        report = job.result()
    assert report.failures == ()
    assert report.fingerprint() == serial(keys).fingerprint()


def test_retry_exhaustion_records_a_structured_unit_failure():
    """With the retry budget at zero, a killed worker's unit becomes a
    :class:`UnitFailure` on the report — the job still completes every
    other program instead of hanging or aborting."""
    options = PipelineOptions(jobs=2, granularity="function",
                              max_unit_retries=0)
    with ServingEngine(options) as engine:
        job = engine.submit(KEYS[:4])
        victim = next(iter(engine._workers.values()))
        victim_key = (victim.assignment[1].key
                      if victim.assignment else None)
        victim.process.kill()
        report = job.result()
        assert len(report.failures) >= 1
        for failure in report.failures:
            assert failure.attempts == 1
            assert "worker died" in failure.error
        failed_keys = {f.key for f in report.failures}
        if victim_key is not None:
            assert victim_key in failed_keys
        # Completed programs cover exactly the rest, in canonical order.
        expected = [k for k in KEYS[:4] if k not in failed_keys]
        assert [d.key for d in report.programs] == expected
        # The pool survives: the next request is complete and correct.
        after = engine.serve(KEYS[:2])
    assert after.failures == ()
    assert after.fingerprint() == serial(KEYS[:2]).fingerprint()


def test_unit_failures_round_trip_through_report_json():
    report = detect_corpus(jobs=1, keys=KEYS[:2])
    wounded = report.__class__(
        programs=report.programs,
        jobs=report.jobs,
        failures=(UnitFailure(name="lost", suite="NAS", function="f",
                              error="worker died", attempts=3),),
    )
    rebuilt = report_from_json(report_to_json(wounded))
    assert rebuilt.failures == wounded.failures
    assert "FAILED" in wounded.summary()
    assert "after 3 attempt(s)" in wounded.failures[0].describe()


# -- worker lifecycle: recycling and liveness ---------------------------------


def test_max_tasks_per_worker_recycles_without_changing_reports():
    options = PipelineOptions(jobs=2, granularity="function",
                              max_tasks_per_worker=3)
    with ServingEngine(options) as engine:
        before = {h.process.pid for h in engine._workers.values()}
        report = engine.serve(KEYS[:5])
        after = {h.process.pid for h in engine._workers.values()}
        assert engine.recycled > 0
        assert before != after
        assert len(engine._workers) == engine.workers
    assert report.fingerprint() == serial(KEYS[:5]).fingerprint()


def test_heartbeats_keep_slow_workers_alive_under_a_tight_timeout():
    """Liveness is heartbeat-based, not result-gap-based: with a
    timeout far shorter than the whole run, workers that beat from a
    background thread are never falsely declared hung."""
    options = PipelineOptions(jobs=2, granularity="function",
                              heartbeat_interval=0.05,
                              heartbeat_timeout=1.0,
                              start_method="fork")
    with ServingEngine(options) as engine:
        report = engine.serve(KEYS[:10])
        assert engine.worker_deaths == 0
        assert engine.resubmissions == 0
    assert report.fingerprint() == serial(KEYS[:10]).fingerprint()


def test_stale_heartbeat_declares_a_hung_worker_dead():
    """A worker whose process is alive but silent past the heartbeat
    timeout is terminated and replaced like a dead one."""
    options = PipelineOptions(jobs=2, granularity="program")
    with ServingEngine(options) as engine:
        handle = next(iter(engine._workers.values()))
        hung_pid = handle.process.pid
        handle.last_beat = (
            time.monotonic() - engine.options.heartbeat_timeout - 1.0
        )
        engine._check_liveness()
        assert engine.worker_deaths == 1
        assert len(engine._workers) == engine.workers
        assert hung_pid not in {
            h.process.pid for h in engine._workers.values()
        }
        report = engine.serve(KEYS[:2])
    assert report.fingerprint() == serial(KEYS[:2]).fingerprint()


def test_duplicate_results_from_a_falsely_dead_worker_count_once():
    """The duplicate guard: a unit resubmitted after a false death
    verdict may produce two results; only the first is delivered."""
    unit = WorkUnit("EP", "NAS")
    digest = UnitDigest(name="EP", suite="NAS", function=None,
                        index=0, total=1, functions=())

    class _Engine:
        workers = 1

    job = ServingJob(_Engine(), 0, [("EP", "NAS")], 1)
    job._expect(unit)
    job._deliver(digest)
    assert job.done and len(job._completed) == 1
    job._deliver(digest)  # the late duplicate
    assert job._pending_units == 0
    assert len(job._completed) == 1
    job._lost(unit, UnitFailure("EP", "NAS", None, "late verdict", 2))
    assert job._failures == []


# -- submit must not leak workers ---------------------------------------------


def test_failing_submit_on_a_cold_engine_leaks_no_workers():
    """Regression: ``submit`` used to auto-start the pool *before*
    planning, so a planning failure left worker processes running with
    no job and no context manager to reap them."""
    engine = ServingEngine(PipelineOptions(jobs=2,
                                           granularity="function"))
    assert not engine.running
    with pytest.raises(KeyError, match="no-such-program"):
        engine.submit([("no-such-program", "NAS")])
    assert not engine.running
    assert engine._workers == {}
    # The engine is not poisoned: a valid submit afterwards works.
    with engine:
        report = engine.serve(KEYS[:2])
    assert not engine.running
    assert report.fingerprint() == serial(KEYS[:2]).fingerprint()


def test_failing_submit_keeps_a_busy_engine_running():
    """A planning failure must tear down only a pool it started: with
    another job in flight, the engine keeps serving."""
    options = PipelineOptions(jobs=2, granularity="function")
    with ServingEngine(options) as engine:
        job = engine.submit(KEYS[:3])
        with pytest.raises(KeyError, match="no-such-program"):
            engine.submit([("no-such-program", "NAS")])
        assert engine.running
        report = job.result()
    assert report.fingerprint() == serial(KEYS[:3]).fingerprint()


# -- cold-start-aware measured weights ----------------------------------------


def test_pure_cold_start_shards_exactly_like_the_static_proxy():
    """ROADMAP's cold-start item, degenerate case: a measured report
    covering *zero* of the submitted programs yields weights
    proportional to the static proxy — and LPT sharding is invariant
    under positive scaling, so the shards are identical."""
    report = detect_corpus(jobs=1, keys=KEYS[:6])
    cold_keys = [k for k in KEYS if k not in set(KEYS[:6])]
    weight = measured_weights(report)
    for jobs in (2, 3, 5):
        assert make_shards(cold_keys, jobs, weight=weight) == make_shards(
            cold_keys, jobs
        )


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_cold_start_property_disjoint_reports_reproduce_proxy_shards(data):
    """Property form over random disjoint splits and shard counts."""
    seen = data.draw(
        st.lists(st.sampled_from(KEYS), min_size=1, max_size=6,
                 unique=True),
        label="seen",
    )
    cold = [k for k in KEYS if k not in set(seen)][:10]
    jobs = data.draw(st.integers(min_value=2, max_value=5), label="jobs")
    report = detect_corpus(jobs=1, keys=sorted(seen, key=KEYS.index))
    weight = measured_weights(report)
    assert make_shards(cold, jobs, weight=weight) == make_shards(
        cold, jobs
    )


def test_unseen_weights_scale_with_the_static_proxy():
    """Warm entries keep their measured cost; unseen programs are
    differentiated by their proxy on the measured scale — a big cold
    program weighs more than a small one, proportionally."""
    from repro.pipeline.shard import default_weight

    report = detect_corpus(jobs=1, keys=KEYS[:5])
    weight = measured_weights(report)
    cold = [k for k in KEYS if k not in set(KEYS[:5])][:4]
    weights = {k: weight(k) for k in cold}
    proxies = {k: default_weight(k) for k in cold}
    ratios = [weights[k] / proxies[k] for k in cold]
    for ratio in ratios[1:]:
        assert ratio == pytest.approx(ratios[0])
    # Scaled into the measured distribution: the ratio times the mean
    # proxy of the report's own programs equals the measured mean.
    seen_costs = [
        sum(p.stage_seconds.values()) for p in report.programs
    ]
    seen_proxies = [default_weight(p.key) for p in report.programs]
    expected = (sum(seen_costs) / len(seen_costs)) / (
        sum(seen_proxies) / len(seen_proxies)
    )
    assert ratios[0] == pytest.approx(expected)


def test_poisoned_proxy_propagates_instead_of_silently_degrading(
        monkeypatch):
    """Bugfix regression: the measured-weights blend used to swallow
    *every* exception from the static proxy, so a genuine bug (a
    compile crash, a corrupted module) silently degraded to the
    measured mean and unbalanced schedules with no trace.  Only the
    expected resolution failure (``KeyError``: unknown program or
    function) may fall back."""
    import repro.pipeline.shard as shard_module

    report = detect_corpus(jobs=1, keys=KEYS[:3])
    weight = measured_weights(report)

    def poisoned(unit):
        raise RuntimeError("compiler exploded")

    monkeypatch.setattr(shard_module, "unit_weight", poisoned)
    with pytest.raises(RuntimeError, match="compiler exploded"):
        weight(KEYS[5])  # unseen: the blend must consult the proxy


def test_expected_resolution_failure_still_falls_back(monkeypatch):
    """The flip side of the narrowing: a proxy that raises KeyError —
    the documented unknown-program/function failure — degrades to the
    measured mean exactly as before."""
    import repro.pipeline.shard as shard_module

    report = detect_corpus(jobs=1, keys=KEYS[:3])
    weight = measured_weights(report)

    def unresolvable(unit):
        raise KeyError("no such program")

    monkeypatch.setattr(shard_module, "unit_weight", unresolvable)
    costs = [sum(p.stage_seconds.values()) for p in report.programs]
    assert weight(KEYS[5]) == pytest.approx(sum(costs) / len(costs))


def test_unresolvable_unseen_work_falls_back_to_the_measured_mean():
    report = detect_corpus(jobs=1, keys=KEYS[:3])
    weight = measured_weights(report)
    costs = [sum(p.stage_seconds.values()) for p in report.programs]
    assert weight(("not-in-any-corpus", "NAS")) == pytest.approx(
        sum(costs) / len(costs)
    )


def test_empty_report_weights_are_the_static_proxy_itself():
    from repro.pipeline import CorpusReport
    from repro.pipeline.shard import default_weight

    weight = measured_weights(CorpusReport(programs=()))
    for key in KEYS[:4]:
        assert weight(key) == default_weight(key)


def test_blended_weights_never_change_the_report():
    """Scheduling policy only: serving a half-cold corpus with blended
    weights is fingerprint-identical to the serial run."""
    profile = detect_corpus(jobs=1, keys=KEYS[:4])
    report = detect_corpus(jobs=3, keys=KEYS[:8], weights=profile,
                           granularity="function")
    assert report.fingerprint() == serial(KEYS[:8]).fingerprint()
