"""Tests for the Polly baseline model."""

from repro.baselines import polly
from repro.frontend import compile_source


def _analyze(source):
    return polly.analyze_module(compile_source(source))


def test_constant_bound_affine_nest_is_scop():
    report = _analyze(
        """
        double a[64]; double b[64];
        void f(void) {
            for (int i = 1; i < 7; i++)
                for (int j = 1; j < 7; j++)
                    b[i*8 + j] = a[i*8 + j - 1] + a[i*8 + j + 1];
        }
        """
    )
    assert report.counts() == (1, 0)


def test_argument_bound_is_scop_parameter():
    report = _analyze(
        """
        double a[64];
        double f(int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + a[i];
            return s;
        }
        """
    )
    assert report.counts() == (1, 1)
    assert report.reductions[0].startswith("scalar:")


def test_runtime_bound_breaks_scop():
    """§6.1: not statically known iteration spaces."""
    report = _analyze(
        """
        double a[64]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + a[i];
            return s;
        }
        """
    )
    assert report.counts() == (0, 0)


def test_call_breaks_scop():
    report = _analyze(
        """
        double a[64];
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < 32; i++) s = s + sqrt(a[i]);
            return s;
        }
        """
    )
    assert report.counts() == (0, 0)


def test_data_dependent_branch_breaks_scop():
    report = _analyze(
        """
        double a[64];
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < 32; i++)
                if (a[i] > 0.5) s = s + a[i];
            return s;
        }
        """
    )
    assert report.counts() == (0, 0)


def test_flat_array_with_parametric_pitch_breaks_scop():
    """§6.1: the use of flat array structures."""
    report = _analyze(
        """
        double a[4096];
        double f(int rows, int cols) {
            double s = 0.0;
            for (int i = 0; i < 8; i++)
                for (int j = 0; j < 8; j++)
                    s = s + a[i*cols + j];
            return s;
        }
        """
    )
    assert report.counts() == (0, 0)


def test_indirect_access_breaks_scop():
    """Histograms can never be SCoPs."""
    report = _analyze(
        """
        int hist[64]; int keys[64];
        void f(void) {
            for (int i = 0; i < 32; i++)
                hist[keys[i]] = hist[keys[i]] + 1;
        }
        """
    )
    assert report.counts() == (0, 0)


def test_midnest_array_reduction_found():
    """The SP rms pattern: a reduction carried by the outer loops."""
    report = _analyze(
        """
        double rms[5]; double rhs[640];
        void f(void) {
            for (int k = 0; k < 8; k++)
                for (int j = 0; j < 16; j++)
                    for (int m = 0; m < 5; m++) {
                        double add = rhs[(k*16 + j)*5 + m];
                        rms[m] = rms[m] + add * add;
                    }
        }
        """
    )
    assert report.counts() == (1, 1)
    assert report.reductions[0].startswith("array:@rms")


def test_stencil_scop_carries_no_reduction():
    report = _analyze(
        """
        double a[64]; double b[64];
        void f(void) {
            for (int i = 1; i < 63; i++)
                b[i] = 0.5 * (a[i-1] + a[i+1]);
        }
        """
    )
    assert report.counts() == (1, 0)


def test_inplace_update_not_a_reduction_scop():
    """y[i] += x[i] varies with the iterator: a map, not a reduction."""
    report = _analyze(
        """
        double x[64]; double y[64];
        void f(void) {
            for (int i = 0; i < 64; i++)
                y[i] = y[i] + 2.0 * x[i];
        }
        """
    )
    assert report.counts() == (1, 0)
