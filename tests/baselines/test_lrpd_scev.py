"""Tests for the LRPD-test and SCEV-style baseline models (§6.1)."""

from repro.baselines import lrpd, scev_reduction
from repro.frontend import compile_source


def test_scev_finds_plain_sum():
    module = compile_source(
        """
        double a[64]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + a[i];
            return s;
        }
        """
    )
    assert scev_reduction.analyze_module(module).count() == 1


def test_scev_rejects_conditional_update():
    module = compile_source(
        """
        double a[64]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++)
                if (a[i] > 0.0) s = s + a[i];
            return s;
        }
        """
    )
    assert scev_reduction.analyze_module(module).count() == 0


def test_scev_rejects_calls():
    module = compile_source(
        """
        double a[64]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + sqrt(a[i]);
            return s;
        }
        """
    )
    assert scev_reduction.analyze_module(module).count() == 0


def test_lrpd_accepts_arithmetic_reduction_with_one_guard():
    module = compile_source(
        """
        double a[64]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++)
                if (a[i] > 0.0) s = s + a[i];
            return s;
        }
        """
    )
    assert lrpd.analyze_module(module).count() == 1


def test_lrpd_rejects_pure_calls():
    """§6.1: EP's sqrt/log calls — [28] is restricted to arithmetic."""
    module = compile_source(
        """
        double a[64]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + sqrt(a[i]);
            return s;
        }
        """
    )
    assert lrpd.analyze_module(module).count() == 0


def test_lrpd_rejects_complex_control_flow():
    """§6.1: tpacf's control flow is beyond the LRPD model."""
    module = compile_source(
        """
        double a[64]; double b[64]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) {
                if (a[i] > 0.0) {
                    if (b[i] > 0.5) s = s + a[i];
                    else s = s + b[i];
                }
            }
            return s;
        }
        """
    )
    assert lrpd.analyze_module(module).count() == 0
