"""Tests for the icc baseline model."""

from repro.baselines import icc
from repro.frontend import compile_source


def _analyze(source):
    return icc.analyze_module(compile_source(source))


def test_plain_sum_detected():
    report = _analyze(
        """
        double a[64]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + a[i];
            return s;
        }
        """
    )
    assert report.reduction_count() == 1


def test_known_math_call_allowed():
    report = _analyze(
        """
        double a[64]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + sqrt(fabs(a[i]));
            return s;
        }
        """
    )
    assert report.reduction_count() == 1


def test_fmax_blocks_loop():
    """§6.1: icc does not know fmin/fmax are pure (cutcp)."""
    report = _analyze(
        """
        double a[64]; int n;
        double f(void) {
            double m = a[0];
            for (int i = 0; i < n; i++) m = fmax(m, a[i]);
            return m;
        }
        """
    )
    assert report.reduction_count() == 0
    blocked = [l for l in report.loops if not l.parallelizable]
    assert any("fmax" in l.reason for l in blocked)


def test_select_minmax_detected():
    report = _analyze(
        """
        double a[64]; int n;
        double f(void) {
            double m = a[0];
            for (int i = 0; i < n; i++) m = a[i] > m ? a[i] : m;
            return m;
        }
        """
    )
    assert report.reduction_count() == 1


def test_histogram_blocked():
    """§6.1: icc does not attempt to detect histograms."""
    report = _analyze(
        """
        int hist[64]; int keys[64]; int n;
        void f(void) {
            for (int i = 0; i < n; i++)
                hist[keys[i]] = hist[keys[i]] + 1;
        }
        """
    )
    assert report.reduction_count() == 0
    blocked = [l for l in report.loops if not l.parallelizable]
    assert any("indirect" in l.reason or "flow" in l.reason
               for l in blocked)


def test_gather_load_blocked():
    report = _analyze(
        """
        double v[64]; int idx[64]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + v[idx[i]];
            return s;
        }
        """
    )
    assert report.reduction_count() == 0


def test_only_innermost_loops_analysed():
    """§6.1: the SP nest — reductions carried mid-nest are missed."""
    report = _analyze(
        """
        double rms[5]; double rhs[640];
        void f(void) {
            for (int k = 0; k < 8; k++)
                for (int j = 0; j < 16; j++)
                    for (int m = 0; m < 5; m++) {
                        double add = rhs[(k*16 + j)*5 + m];
                        rms[m] = rms[m] + add * add;
                    }
        }
        """
    )
    assert report.reduction_count() == 0


def test_unresolved_recurrence_blocks_loop():
    report = _analyze(
        """
        double a[64]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = 0.5 * s + a[i];
            return s;
        }
        """
    )
    assert report.reduction_count() == 0
    blocked = [l for l in report.loops if not l.parallelizable]
    assert any("loop-carried" in l.reason for l in blocked)


def test_multiple_reductions_in_one_loop():
    report = _analyze(
        """
        double a[64]; int n;
        double f(void) {
            double s = 0.0;
            double q = 0.0;
            for (int i = 0; i < n; i++) { s = s + a[i]; q = q + a[i]*a[i]; }
            return s + q;
        }
        """
    )
    assert report.reduction_count() == 2
