"""Tests for the runtime memory model."""

import pytest

from repro.frontend import compile_source
from repro.ir import DOUBLE, INT64
from repro.runtime import Memory
from repro.runtime.memory import Buffer, MemoryError_, Pointer


def test_buffer_zero_initialised_by_type():
    ints = Buffer(INT64, 4, "ints")
    floats = Buffer(DOUBLE, 4, "floats")
    assert ints.data == [0, 0, 0, 0]
    assert floats.data == [0.0, 0.0, 0.0, 0.0]
    assert isinstance(floats.data[0], float)


def test_pointer_displacement_and_access():
    buffer = Buffer(DOUBLE, 4, "b")
    pointer = Pointer(buffer, 0)
    pointer.displaced(2).store(7.5)
    assert buffer.data[2] == 7.5
    assert pointer.displaced(2).load() == 7.5


def test_out_of_bounds_rejected():
    buffer = Buffer(DOUBLE, 4, "b")
    with pytest.raises(MemoryError_, match="out of bounds"):
        Pointer(buffer, 4).load()
    with pytest.raises(MemoryError_, match="out of bounds"):
        Pointer(buffer, -1).store(1.0)


def test_memory_builds_globals_with_initializers():
    module = compile_source(
        """
        double scale = 2.5;
        double table[8];
        int counter;
        """
        + "int f(void) { return 0; }"
    )
    memory = Memory(module)
    assert memory.read_global("scale") == 2.5
    assert memory.read_global("table") == [0.0] * 8
    assert memory.read_global("counter") == 0


def test_snapshot_is_a_deep_copy():
    module = compile_source("double g; int f(void) { return 0; }")
    memory = Memory(module)
    snap = memory.snapshot()
    memory.buffers["g"].data[0] = 9.0
    assert snap["g"] == [0.0]
