"""Tests for runtime alias checks (§3.1.2).

Detection cannot prove that a histogram passed by pointer does not
alias its input arrays; it records no-alias obligations instead, and
the executor must evaluate them at loop entry — falling back to
sequential execution when they fail.
"""

from repro.frontend import compile_source
from repro.idioms import find_reductions
from repro.runtime import ParallelExecutor
from repro.runtime.parallel import run_sequential
from repro.transform import outline_loop, plan_all

SOURCE = """
double hist[64]; double data[256]; int n;
double checksum;

void binup(double *h, double *src, int m) {
    for (int i = 0; i < m; i++) {
        int b = (int) (fmod(src[i], 1.0) * 63.0);
        h[b] = h[b] + 1.0;
    }
}

int main(void) {
    n = 200;
    for (int i = 0; i < n; i++) data[i] = fmod(i * 0.37, 1.0);
    binup(hist, data, n);      // disjoint: parallelizable
    binup(hist, hist, 40);     // aliased: must run sequentially
    print_double(hist[0] + hist[20]);
    return 0;
}
"""


def _prepare():
    module = compile_source(SOURCE)
    report = find_reductions(module)
    tasks = []
    for function_reductions in report.functions:
        plans, _ = plan_all(module, function_reductions)
        tasks.extend(outline_loop(module, plan) for plan in plans)
    assert len(tasks) == 1
    return module, tasks, report


def test_histogram_on_pointer_params_detected_with_checks():
    module, tasks, report = _prepare()
    histogram = report.histograms[0]
    descriptions = [c.describe() for c in histogram.runtime_checks]
    assert descriptions == ["h does-not-alias src"]


def test_aliased_call_falls_back_to_sequential():
    module, tasks, _ = _prepare()
    _, seq_memory, seq_interp = run_sequential(module)
    executor = ParallelExecutor(module, tasks, threads=16)
    result = executor.run()
    # Two dynamic loop executions: one parallel, one demoted.
    assert len(result.regions) == 2
    assert executor.alias_fallbacks == 1
    parallel_region = result.regions[0]
    sequential_region = result.regions[1]
    assert len(parallel_region.shard_costs) == 16
    assert len(sequential_region.shard_costs) == 1
    # Correctness: identical outputs either way.
    assert result.output == seq_interp.output
    assert result.memory.read_global("hist") == (
        seq_memory.read_global("hist")
    )


def test_disjoint_arrays_never_fall_back():
    source = SOURCE.replace("binup(hist, hist, 40);", "")
    module = compile_source(source)
    report = find_reductions(module)
    tasks = []
    for function_reductions in report.functions:
        plans, _ = plan_all(module, function_reductions)
        tasks.extend(outline_loop(module, plan) for plan in plans)
    executor = ParallelExecutor(module, tasks, threads=16)
    executor.run()
    assert executor.alias_fallbacks == 0
