"""Tests for the IR interpreter."""

import pytest

from repro.frontend import compile_source
from repro.runtime import Interpreter, InterpreterError, Memory


def _run(source, fn="f", args=(), globals_=None, seed=12345):
    module = compile_source(source)
    memory = Memory(module)
    for name, values in (globals_ or {}).items():
        buffer = memory.buffers[name]
        if isinstance(values, (int, float)):
            buffer.data[0] = values
        else:
            for index, value in enumerate(values):
                buffer.data[index] = value
    interp = Interpreter(module, memory, seed=seed)
    result = interp.call(module.get_function(fn), list(args))
    return result, interp, memory


def test_arithmetic_and_return():
    result, _, _ = _run("int f(int a, int b) { return a * b + 7; }",
                        args=[6, 7])
    assert result == 49


def test_c_style_integer_division():
    result, _, _ = _run("int f(int a, int b) { return a / b; }",
                        args=[-7, 2])
    assert result == -3  # truncation toward zero, not floor
    result, _, _ = _run("int f(int a, int b) { return a % b; }",
                        args=[-7, 2])
    assert result == -1


def test_division_by_zero_raises():
    with pytest.raises(InterpreterError, match="division by zero"):
        _run("int f(int a) { return 1 / a; }", args=[0])


def test_loop_sum_and_counters():
    source = """
    double a[8]; int n;
    double f(void) {
        double s = 0.0;
        for (int i = 0; i < n; i++) s = s + a[i];
        return s;
    }
    """
    result, interp, _ = _run(
        source, globals_={"a": [1.0] * 8, "n": 5}
    )
    assert result == 5.0
    assert interp.instructions_executed > 0
    assert interp.block_counts


def test_conditionals_and_select():
    result, _, _ = _run(
        "double f(double a, double b) { return a > b ? a : b; }",
        args=[2.5, 9.0],
    )
    assert result == 9.0


def test_global_store_visible_after_call():
    source = """
    double out;
    void f(double x) { out = x * 2.0; }
    """
    _, _, memory = _run(source, args=[21.0])
    assert memory.read_global("out") == 42.0


def test_array_out_of_bounds_caught():
    source = """
    double a[4];
    double f(int i) { return a[i]; }
    """
    with pytest.raises(Exception, match="out of bounds"):
        _run(source, args=[9])


def test_intrinsics():
    result, _, _ = _run(
        "double f(double x) { return sqrt(x) + fabs(0.0 - x) + "
        "fmin(x, 1.0) + pow(x, 2.0); }",
        args=[4.0],
    )
    assert result == 2.0 + 4.0 + 1.0 + 16.0


def test_rand_is_deterministic():
    source = "int f(void) { return rand(); }"
    a, _, _ = _run(source, seed=7)
    b, _, _ = _run(source, seed=7)
    c, _, _ = _run(source, seed=8)
    assert a == b
    assert a != c


def test_print_output_collected():
    source = """
    void f(void) { print_int(3); print_double(1.5); }
    """
    _, interp, _ = _run(source)
    assert interp.output == ["3", "1.500000"]


def test_instruction_budget_enforced():
    source = """
    int n;
    int f(void) {
        int x = 0;
        for (int i = 0; i < n; i++) x = x + 1;
        return x;
    }
    """
    module = compile_source(source)
    memory = Memory(module)
    memory.buffers["n"].data[0] = 10**9
    interp = Interpreter(module, memory, max_instructions=10_000)
    with pytest.raises(InterpreterError, match="budget"):
        interp.call(module.get_function("f"), [])


def test_user_function_calls():
    source = """
    double square(double x) { return x * x; }
    double f(double x) { return square(x) + square(x + 1.0); }
    """
    result, _, _ = _run(source, args=[3.0])
    assert result == 9.0 + 16.0


def test_local_array_alloca():
    source = """
    double f(void) {
        double buf[4];
        for (int i = 0; i < 4; i++) buf[i] = i * 2.0;
        return buf[0] + buf[3];
    }
    """
    result, _, _ = _run(source)
    assert result == 6.0


def test_while_loop_binary_search():
    source = """
    double b[8]; int nb;
    int f(double d) {
        int lo = 0;
        int hi = nb;
        while (lo < hi) {
            int mid = (lo + hi) / 2;
            if (d < b[mid]) hi = mid; else lo = mid + 1;
        }
        return lo;
    }
    """
    result, _, _ = _run(
        source, args=[0.35],
        globals_={"b": [0.125 * (i + 1) for i in range(8)], "nb": 8},
    )
    assert result == 2


def test_run_main_requires_main():
    module = compile_source("int g(void) { return 1; }")
    interp = Interpreter(module)
    with pytest.raises(InterpreterError, match="no main"):
        interp.run_main()


def test_instructions_in_blocks_helper():
    source = """
    double a[8]; int n;
    double f(void) {
        double s = 0.0;
        for (int i = 0; i < n; i++) s = s + a[i];
        return s;
    }
    """
    module = compile_source(source)
    memory = Memory(module)
    memory.buffers["n"].data[0] = 6
    interp = Interpreter(module, memory)
    interp.call(module.get_function("f"), [])
    fn = module.get_function("f")
    total = interp.instructions_in_blocks(fn.blocks)
    assert total == sum(interp.block_counts.values())
