"""Tests for the simulated parallel executor, including a hypothesis
property: privatized parallel execution must match sequential
execution for any input and any thread count."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import compile_source
from repro.idioms import find_reductions
from repro.runtime import MachineModel, ParallelExecutor
from repro.runtime.parallel import run_sequential
from repro.transform import outline_loop, plan_all

SOURCE = """
int hist[32]; int keys[256]; double a[256]; int n;
double total;

void build(void) {
    for (int i = 0; i < n; i++)
        hist[keys[i]] = hist[keys[i]] + 1;
}

double accumulate(void) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s = s + a[i];
    return s;
}

int main(void) {
    build();
    total = accumulate();
    print_double(total);
    print_int(hist[0] + hist[7] + hist[31]);
    return 0;
}
"""


def _prepare():
    module = compile_source(SOURCE)
    report = find_reductions(module)
    tasks = []
    for function_reductions in report.functions:
        plans, failures = plan_all(module, function_reductions)
        assert not failures
        for plan in plans:
            tasks.append(outline_loop(module, plan))
    assert len(tasks) == 2
    return module, tasks


def _fill(memory, keys, values):
    memory.buffers["n"].data[0] = len(keys)
    for i, key in enumerate(keys):
        memory.buffers["keys"].data[i] = key
    for i, value in enumerate(values):
        memory.buffers["a"].data[i] = value


def test_parallel_matches_sequential_fixed_input():
    module, tasks = _prepare()
    keys = [(i * 11) % 32 for i in range(200)]
    values = [0.25 * (i % 9) for i in range(200)]

    _, seq_memory, seq_interp = _run_with(module, [], keys, values)
    executor = ParallelExecutor(module, tasks, threads=8)
    _fill_and_run = _run_parallel(executor, keys, values)
    par_result = _fill_and_run
    assert par_result.output == seq_interp.output
    assert par_result.memory.read_global("hist") == (
        seq_memory.read_global("hist")
    )
    assert math.isclose(
        par_result.memory.read_global("total"),
        seq_memory.read_global("total"),
        rel_tol=1e-9,
    )


def _run_with(module, tasks, keys, values):
    from repro.runtime import Interpreter, Memory

    memory = Memory(module)
    _fill(memory, keys, values)
    interp = Interpreter(module, memory)
    value = interp.call(module.get_function("main"), [])
    return value, memory, interp


def _run_parallel(executor, keys, values):
    from repro.runtime import Memory, Interpreter

    executor.records = []
    memory = Memory(executor.module)
    _fill(memory, keys, values)
    interp = Interpreter(executor.module, memory)
    from repro.runtime.parallel import _LoopHandler

    for task in executor.tasks:
        interp.loop_overrides[id(task.plan.loop.header)] = _LoopHandler(
            executor, task
        )
    interp.call(executor.module.get_function("main"), [])

    class Result:
        pass

    result = Result()
    result.output = interp.output
    result.memory = memory
    result.regions = executor.records
    return result


@given(
    keys=st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                  max_size=120),
    scale=st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
    threads=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=25, deadline=None)
def test_parallel_equals_sequential_property(keys, scale, threads):
    module, tasks = _prepare()
    values = [scale * (i % 5) for i in range(len(keys))]
    _, seq_memory, seq_interp = _run_with(module, [], keys, values)
    executor = ParallelExecutor(module, tasks, threads=threads)
    par = _run_parallel(executor, keys, values)
    # Histogram counts are integers: must match exactly.
    assert par.memory.read_global("hist") == seq_memory.read_global("hist")
    # Scalar sum matches up to float reassociation.
    assert math.isclose(
        par.memory.read_global("total"),
        seq_memory.read_global("total"),
        rel_tol=1e-9, abs_tol=1e-9,
    )


def test_simulated_time_decreases_with_threads():
    # Cheap thread management so the small test workload still scales.
    machine = MachineModel(spawn_cost=10.0, merge_cost_per_element=0.1,
                           alloc_cost_per_element=0.1)
    module, tasks = _prepare()
    keys = [(i * 13) % 32 for i in range(250)]
    values = [0.5] * 250
    times = {}
    for threads in (1, 4, 16):
        executor = ParallelExecutor(module, tasks, threads=threads)
        par = _run_parallel(executor, keys, values)
        times[threads] = sum(
            r.critical_path(machine) for r in par.regions
        )
    assert times[4] < times[1]
    assert times[16] < times[4]


def test_spawn_overhead_can_dominate_small_workloads():
    """With the default machine, parallelizing a tiny loop loses — the
    profitability concern §3 mentions."""
    machine = MachineModel()
    module, tasks = _prepare()
    keys = [(i * 13) % 32 for i in range(40)]
    values = [0.5] * 40
    seq_executor = ParallelExecutor(module, tasks, threads=1)
    seq = _run_parallel(seq_executor, keys, values)
    par_executor = ParallelExecutor(module, tasks, threads=32)
    par = _run_parallel(par_executor, keys, values)
    seq_time = sum(r.critical_path(machine) for r in seq.regions)
    par_time = sum(r.critical_path(machine) for r in par.regions)
    assert par_time > seq_time


def test_region_records_capture_shards():
    module, tasks = _prepare()
    keys = [(i * 3) % 32 for i in range(100)]
    values = [1.0] * 100
    executor = ParallelExecutor(module, tasks, threads=8)
    par = _run_parallel(executor, keys, values)
    assert len(par.regions) == 2
    for record in par.regions:
        assert len(record.shard_costs) == 8
        assert record.iterations == 100
        assert record.total_work() > 0
