"""Tests for the §3 profitability heuristic."""

from repro.frontend import compile_source
from repro.idioms import find_reductions
from repro.runtime import MachineModel
from repro.transform.profitability import assess, estimate_speedup


def test_estimate_speedup_amdahl_limit():
    machine = MachineModel(spawn_cost=0, merge_cost_per_element=0,
                           alloc_cost_per_element=0)
    # 50% coverage on infinite cores tends to 2x.
    estimate = estimate_speedup(0.5, 1000.0, 0, 1_000_000, machine)
    assert 1.9 < estimate <= 2.0
    # Full coverage scales linearly.
    estimate = estimate_speedup(1.0, 64_000.0, 0, 64, machine)
    assert abs(estimate - 64.0) < 1e-6


def test_estimate_speedup_overhead_dominates_small_regions():
    machine = MachineModel()
    estimate = estimate_speedup(0.5, 100.0, 1000, 64, machine)
    assert estimate < 1.0  # spawning costs more than the loop


def test_assess_distinguishes_hot_and_cold_loops():
    source = """
    double big[4096]; double small_a[8]; int nbig; int nsmall;
    double hot;
    double cold;

    double sum_big(void) {
        double s = 0.0;
        for (int i = 0; i < nbig; i++) s = s + big[i];
        return s;
    }
    double sum_small(void) {
        double s = 0.0;
        for (int i = 0; i < nsmall; i++) s = s + small_a[i];
        return s;
    }
    int main(void) {
        nbig = 4096; nsmall = 8;
        for (int i = 0; i < nbig; i++) big[i] = fmod(i * 0.37, 1.0);
        hot = sum_big();
        cold = sum_small();
        print_double(hot + cold);
        return 0;
    }
    """
    module = compile_source(source)
    report = find_reductions(module)
    result = assess(module, report.functions, threads=64)
    by_name = {d.name: d for d in result.decisions}
    hot = next(d for n, d in by_name.items() if n.startswith("sum_big"))
    cold = next(d for n, d in by_name.items() if n.startswith("sum_small"))
    assert hot.apply
    assert not cold.apply
    assert hot.coverage > cold.coverage
    assert hot.estimated_speedup > cold.estimated_speedup


def test_assess_reports_transform_failures():
    source = """
    double q[16]; double log_[64]; double x[64]; int n;
    void f(void) {
        for (int i = 0; i < n; i++) {
            int b = (int) (x[i] * 15.0);
            q[b] = q[b] + 1.0;
            log_[i] = x[i];
        }
    }
    int main(void) {
        n = 64;
        for (int i = 0; i < n; i++) x[i] = fmod(i * 0.21, 1.0);
        f();
        print_double(q[0]);
        return 0;
    }
    """
    module = compile_source(source)
    report = find_reductions(module)
    result = assess(module, report.functions)
    assert not result.decisions
    assert result.failures
