"""Tests for parallelization planning and loop outlining (§4)."""

import pytest

from repro.frontend import compile_source
from repro.idioms import find_reductions
from repro.ir import verify_module
from repro.runtime import Interpreter, Memory
from repro.transform import (
    ParallelPlan,
    TransformFailure,
    outline_loop,
    plan_all,
    plan_loop,
)
from repro.transform.plan import identity_value, merge_values
from repro.idioms.reports import ReductionOp


def _plan(source, fn="f"):
    module = compile_source(source)
    report = find_reductions(module)
    reductions = next(
        r for r in report.functions if r.function.name == fn
    )
    plans, failures = plan_all(module, reductions)
    return module, reductions, plans, failures


SUM = """
double a[64]; int n;
double f(void) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s = s + a[i];
    return s;
}
"""


def test_simple_sum_planned():
    module, reductions, plans, failures = _plan(SUM)
    assert len(plans) == 1 and not failures
    plan = plans[0]
    assert len(plan.scalars) == 1
    assert not plan.histograms
    assert not plan.dynamic_bounds


def test_histogram_planned_with_scalars():
    source = """
    double q[16]; double x[64]; int n;
    double f(void) {
        double s = 0.0;
        for (int i = 0; i < n; i++) {
            int b = (int) (x[i] * 15.0);
            q[b] = q[b] + 1.0;
            s = s + x[i];
        }
        return s;
    }
    """
    module, reductions, plans, failures = _plan(source)
    assert len(plans) == 1
    assert len(plans[0].scalars) == 1
    assert len(plans[0].histograms) == 1


def test_uncovered_store_fails_plan():
    source = """
    double q[16]; double log_[64]; double x[64]; int n;
    void f(void) {
        for (int i = 0; i < n; i++) {
            int b = (int) (x[i] * 15.0);
            q[b] = q[b] + 1.0;
            log_[i] = x[i];
        }
    }
    """
    module, reductions, plans, failures = _plan(source)
    assert not plans
    assert any("store not covered" in f.reason for f in failures)


def test_non_unit_step_fails_plan():
    source = """
    double a[64]; int n;
    double f(void) {
        double s = 0.0;
        for (int i = 0; i < n; i = i + 2) s = s + a[i];
        return s;
    }
    """
    module, reductions, plans, failures = _plan(source)
    assert not plans
    assert any("non-unit" in f.reason for f in failures)


def test_identity_and_merge_helpers():
    assert identity_value(ReductionOp.ADD, True) == 0.0
    assert identity_value(ReductionOp.MUL, True) == 1.0
    assert identity_value(ReductionOp.MIN, True) == float("inf")
    assert identity_value(ReductionOp.MAX, False) == -(2**62)
    assert merge_values(ReductionOp.ADD, 2, 3) == 5
    assert merge_values(ReductionOp.MUL, 2, 3) == 6
    assert merge_values(ReductionOp.MIN, 2, 3) == 2
    assert merge_values(ReductionOp.MAX, 2, 3) == 3


def _closure_values(task, interp, memory):
    """Evaluate closure values the way the executor would at loop entry
    (here they are always hoisted loads of scalar globals)."""
    from repro.ir import GlobalVariable, LoadInst

    values = []
    for value in task.closure:
        assert isinstance(value, LoadInst)
        assert isinstance(value.pointer, GlobalVariable)
        values.append(memory.pointer_to(value.pointer).load())
    return values


def test_outlined_task_verifies_and_matches_semantics():
    module, reductions, plans, failures = _plan(SUM)
    task = outline_loop(module, plans[0])
    verify_module(module)
    assert task.task.name in module.functions
    # Running the task over the full range must equal the loop's work.
    memory = Memory(module)
    memory.buffers["n"].data[0] = 50
    for i in range(64):
        memory.buffers["a"].data[i] = float(i)
    interp = Interpreter(module, memory)
    sequential = interp.call(module.get_function("f"), [])

    from repro.runtime.memory import Buffer, Pointer

    out = Buffer(plans[0].scalars[0].acc.type, 1, "out")
    out.data[0] = 0.0
    closure = _closure_values(task, interp, memory)
    interp.call(task.task, [0, 50, Pointer(out, 0), *closure])
    assert out.data[0] == sequential


def test_outlined_task_partial_ranges_compose():
    module, reductions, plans, failures = _plan(SUM)
    task = outline_loop(module, plans[0])
    memory = Memory(module)
    memory.buffers["n"].data[0] = 40
    for i in range(64):
        memory.buffers["a"].data[i] = float(i % 7)
    interp = Interpreter(module, memory)
    expected = interp.call(module.get_function("f"), [])

    from repro.runtime.memory import Buffer, Pointer

    total = 0.0
    closure = _closure_values(task, interp, memory)
    for lo, hi in ((0, 13), (13, 29), (29, 40)):
        out = Buffer(plans[0].scalars[0].acc.type, 1, "out")
        out.data[0] = 0.0
        interp.call(task.task, [lo, hi, Pointer(out, 0), *closure])
        total += out.data[0]
    assert total == expected


def test_kmeans_style_failure_reason():
    source = """
    double count[8]; double csum[64]; double feat[512]; int n; int nf;
    void f(void) {
        for (int i = 0; i < n; i++) {
            int best = (int) feat[i * nf];
            for (int j = 0; j < nf; j++) {
                csum[best * nf + j] = csum[best * nf + j]
                    + feat[i * nf + j];
            }
            count[best] = count[best] + 1.0;
        }
    }
    """
    module, reductions, plans, failures = _plan(source)
    assert not plans
    assert any(
        "multiple histogram updates in a nested loop" in f.reason
        for f in failures
    )
