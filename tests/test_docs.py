"""Documentation smoke tests: documented commands cannot rot.

Every fenced ``python`` and ``shell``/``bash``/``sh`` block in
``README.md`` and ``docs/*.md`` is extracted and executed — python
blocks as subprocess scripts, shell blocks line-wise through the
shell — inside a sandbox directory holding symlinks to ``src`` and
``examples`` (so ``PYTHONPATH=src`` and ``examples/foo.c`` resolve,
while artifacts like ``feedback.json`` land in the sandbox, not the
repository).  Blocks within one document share the sandbox and run in
order, so a ``--save-feedback`` block can feed a later
``--feedback-from`` block exactly as a reader would run them.

Blocks that are deliberately not self-contained (illustrative
fragments, the recursive full-test-suite command) opt out with an
HTML comment immediately above the fence::

    <!-- docs-smoke: skip (reason) -->

``text``/``console``/``icsl`` and unlabelled fences are prose, not
commands, and are ignored.  The CI ``docs-smoke`` job runs exactly
this module.
"""

import os
import re
import subprocess
import sys

import pytest

REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
RUNNABLE = {"python", "py", "shell", "bash", "sh"}
SKIP_MARKER = "docs-smoke: skip"
FENCE = re.compile(r"^```(\w*)\s*$")

DOC_FILES = ["README.md"] + sorted(
    os.path.join("docs", name)
    for name in os.listdir(os.path.join(REPO, "docs"))
    if name.endswith(".md")
)


def extract_blocks(path):
    """``(start_line, language, source)`` for every runnable block."""
    blocks = []
    language = None
    body: list[str] = []
    start = 0
    skip_next = False
    pending_skip = False
    with open(path) as handle:
        for number, line in enumerate(handle, 1):
            match = FENCE.match(line.strip()) if language is None else None
            if language is None:
                if match:
                    language = match.group(1).lower() or "text"
                    body = []
                    start = number
                    pending_skip = skip_next
                    skip_next = False
                elif SKIP_MARKER in line:
                    skip_next = True
                elif line.strip():
                    skip_next = False
                continue
            if line.strip() == "```":
                if language in RUNNABLE and not pending_skip:
                    blocks.append((start, language, "".join(body)))
                language = None
            else:
                body.append(line)
    return blocks


def _env():
    env = dict(os.environ)
    src = os.path.join(REPO, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src + os.pathsep + existing if existing else src
    )
    return env


@pytest.fixture
def sandbox(tmp_path):
    """A scratch cwd where repo-relative doc paths resolve."""
    for name in ("src", "examples", "docs"):
        os.symlink(os.path.join(REPO, name), tmp_path / name)
    return tmp_path


@pytest.mark.parametrize("doc", DOC_FILES)
def test_documented_blocks_run(doc, sandbox):
    blocks = extract_blocks(os.path.join(REPO, doc))
    assert blocks, f"{doc} documents no runnable python/shell blocks"
    for start, language, source in blocks:
        if language in ("python", "py"):
            command = [sys.executable, "-c", source]
        else:
            command = ["/bin/sh", "-e", "-c", source]
        result = subprocess.run(
            command,
            cwd=sandbox,
            env=_env(),
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, (
            f"{doc}:{start} ({language} block) exited "
            f"{result.returncode}\n--- block ---\n{source}\n"
            f"--- stdout ---\n{result.stdout}\n"
            f"--- stderr ---\n{result.stderr}"
        )


def test_readme_links_resolve():
    """Relative links in README.md and docs/*.md point at real files."""
    link = re.compile(r"\[[^\]]+\]\(([^)#]+)\)")
    for doc in DOC_FILES:
        base = os.path.dirname(os.path.join(REPO, doc))
        text = open(os.path.join(REPO, doc)).read()
        for target in link.findall(text):
            if target.startswith(("http://", "https://")):
                continue
            resolved = os.path.normpath(os.path.join(base, target))
            assert os.path.exists(resolved), (
                f"{doc} links to missing {target!r}"
            )
