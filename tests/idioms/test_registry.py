"""Tests for the idiom registry — the spec-file-first detection path."""

import pytest

from repro.constraints import SpecFileError
from repro.frontend import compile_source
from repro.idioms import (
    BUILTIN_IDIOMS,
    IdiomRegistry,
    default_registry,
    find_reductions,
    reset_default_registry,
)
from repro.idioms import registry as registry_module

SOURCE = """
double a[32]; int hist[8]; int keys[32]; int n;
double total(void) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s = s + a[i];
    return s;
}
void count(void) {
    for (int i = 0; i < n; i++) hist[keys[i]]++;
}
"""


def test_builtins_load_from_shipped_spec_files():
    registry = IdiomRegistry()
    assert set(registry.names()) == set(BUILTIN_IDIOMS)
    for name in BUILTIN_IDIOMS:
        entry = registry.entry(name)
        assert entry.source.endswith(".icsl"), (
            f"{name} should come from a spec file, not {entry.source!r}"
        )
        assert entry.kind == name
    assert registry.spec("for-loop").label_order[0] == "header"
    assert len(registry.spec("histogram").label_order) == 18


def test_extension_idioms_are_shipped_builtins():
    """The §8 extension idioms load from their own ``.icsl`` files and
    extend the for-loop spec *object*, so the solver can replay its
    solved prefix."""
    from repro.idioms import EXTENSION_IDIOMS

    registry = IdiomRegistry()
    forloop = registry.spec("for-loop")
    assert set(EXTENSION_IDIOMS) <= set(registry.names())
    for name in EXTENSION_IDIOMS:
        entry = registry.entry(name)
        assert entry.source.endswith(".icsl")
        assert entry.spec.base is forloop
        assert entry.spec.label_order[:11] == forloop.label_order


def test_extension_override_rewires_extended_detection(tmp_path):
    """Replacing a shipped extension idiom through a user file rewires
    ``find_extended_reductions`` — same §3.4 loop as the core idioms."""
    from repro.idioms import find_extended_reductions

    source = """
    double xs[16]; double ys[16]; int n;
    double dot(void) {
        double s = 0.0;
        for (int i = 0; i < n; i++) s = s + xs[i] * ys[i];
        return s;
    }
    """
    module = compile_source(source)
    assert len(find_extended_reductions(module).dot_products) == 1
    path = tmp_path / "no-dot.icsl"
    path.write_text(
        "idiom dot-product extends for-loop {\n"
        "  order: header test body exit entry latch iterator next_iter"
        " iter_begin iter_step iter_end acc update acc_init product"
        " load_a load_b gep_a gep_b base_a base_b\n"
        "  phi2(acc, update, acc_init)\n"
        "  opcode(product, fmul, load_a, load_b)\n"
        "  opcode(load_a, load, gep_a)\n"
        "  opcode(load_b, load, gep_b)\n"
        "  opcode(gep_a, gep, base_a, _)\n"
        "  opcode(gep_b, gep, base_b, _)\n"
        "  distinct(header, header)\n"  # never true
        "}\n"
    )
    registry = IdiomRegistry()
    registry.load_file(str(path))
    report = find_extended_reductions(module, registry=registry)
    assert not report.dot_products


def test_find_reductions_routes_through_registry():
    module = compile_source(SOURCE)
    report = find_reductions(module, registry=IdiomRegistry())
    scalars, histograms = report.counts()
    assert (scalars, histograms) == (1, 1)


def test_registry_override_changes_detection():
    """Replacing a built-in through a user file rewires detection —
    the §3.4 experimentation loop, no Python involved."""
    registry = IdiomRegistry()
    # A deliberately impossible scalar-reduction variant.
    registry_file = (
        "idiom scalar-reduction extends for-loop {\n"
        "  order: header test body exit entry latch iterator next_iter"
        " iter_begin iter_step iter_end acc acc_update acc_init\n"
        "  phi2(acc, acc_update, acc_init)\n"
        "  distinct(header, header)\n"  # never true
        "}\n"
    )
    import os
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "override.icsl")
        with open(path, "w") as handle:
            handle.write(registry_file)
        entries = registry.load_file(path)
    assert [e.name for e in entries] == ["scalar-reduction"]
    assert registry.entry("scalar-reduction").kind == "scalar-reduction"
    module = compile_source(SOURCE)
    report = find_reductions(module, registry=registry)
    scalars, histograms = report.counts()
    assert (scalars, histograms) == (0, 1)  # scalar path disabled


def test_load_file_registers_custom_idioms(tmp_path):
    path = tmp_path / "custom.icsl"
    path.write_text(
        "idiom any-phi {\n  order: x\n  opcode(x, phi)\n}\n"
    )
    registry = IdiomRegistry()
    entries = registry.load_file(str(path))
    assert [e.name for e in entries] == ["any-phi"]
    assert registry.entry("any-phi").kind == "custom"
    assert "any-phi" in registry
    assert [e.name for e in registry.custom()] == ["any-phi"]


def test_builtin_replacement_must_keep_required_labels(tmp_path):
    """A spec replacing a built-in without the labels post-processing
    reads (e.g. ``acc``) is rejected at load time, not with a KeyError
    mid-detection."""
    path = tmp_path / "bad-override.icsl"
    path.write_text(
        "idiom scalar-reduction {\n"
        "  order: st v p\n"
        "  opcode(st, store, v, p)\n"
        "}\n"
    )
    registry = IdiomRegistry()
    with pytest.raises(SpecFileError, match="required label"):
        registry.load_file(str(path))
    # The built-in stays registered and detection still works.
    module = compile_source(SOURCE)
    assert find_reductions(module, registry=registry).counts() == (1, 1)


def test_load_file_rejects_empty_spec(tmp_path):
    path = tmp_path / "empty.icsl"
    path.write_text("# nothing here\n")
    with pytest.raises(SpecFileError, match="no idioms"):
        IdiomRegistry().load_file(str(path))


def test_unknown_idiom_lookup_names_known_ones():
    with pytest.raises(KeyError, match="histogram"):
        IdiomRegistry().spec("no-such-idiom")


def test_native_fallback_when_spec_files_missing(monkeypatch):
    monkeypatch.setattr(
        registry_module, "builtin_spec_path",
        lambda name: "/nonexistent/" + name,
    )
    registry = IdiomRegistry()
    assert set(registry.names()) == set(BUILTIN_IDIOMS)
    for name in BUILTIN_IDIOMS:
        assert registry.entry(name).source == "native"
    module = compile_source(SOURCE)
    report = find_reductions(module, registry=registry)
    assert report.counts() == (1, 1)


def test_default_registry_is_cached_and_resettable():
    reset_default_registry()
    first = default_registry()
    assert default_registry() is first
    reset_default_registry()
    assert default_registry() is not first


def test_describe_lists_every_idiom():
    text = IdiomRegistry().describe()
    for name in BUILTIN_IDIOMS:
        assert name in text
    assert "builtin" in text
