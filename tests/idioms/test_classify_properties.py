"""Metamorphic property tests for the associativity classifier.

For a random chain built from a *single* associative operator, possibly
behind random guards, ``classify_update`` must return exactly that
operator; injecting one foreign operator into the chain must yield
None.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import compile_source
from repro.idioms import classify_update
from repro.idioms.reports import ReductionOp

_OPS = {"+": ReductionOp.ADD, "*": ReductionOp.MUL}


def _classify(body: str):
    source = f"""
    double a[64]; double b[64]; int n;
    double f(void) {{
        double s = 1.0;
        for (int i = 0; i < n; i++) {{ {body} }}
        return s;
    }}
    """
    module = compile_source(source)
    fn = module.get_function("f")
    from repro.analysis import LoopInfo

    loop = LoopInfo(fn).top_level_loops()[0]
    header = loop.header
    acc = next(p for p in header.phis() if p.type.is_float())
    latch_pred = next(
        p for p in header.predecessors() if p in loop.blocks
    )
    return classify_update(acc, acc.incoming_for_block(latch_pred))


@st.composite
def op_chains(draw):
    op = draw(st.sampled_from(list(_OPS)))
    terms = draw(st.lists(
        st.sampled_from(["a[i]", "b[i]", "0.5", "a[i] * 0.0 + 2.0"]),
        min_size=1, max_size=3,
    ))
    expr = "s"
    for term in terms:
        expr = f"({expr} {op} ({term}))"
    guarded = draw(st.booleans())
    statement = f"s = {expr};"
    if guarded:
        statement = f"if (a[i] > 0.25) {{ {statement} }}"
    return op, statement


@given(op_chains())
@settings(max_examples=40, deadline=None)
def test_single_operator_chains_classify_correctly(chain):
    op, statement = chain
    assert _classify(statement) is _OPS[op]


@given(op_chains())
@settings(max_examples=25, deadline=None)
def test_foreign_operator_poisons_chain(chain):
    op, statement = chain
    foreign = "*" if op == "+" else "+"
    # Wrap the accumulator chain in one application of the other op.
    poisoned = statement.replace("s = (", f"s = (1.0 {foreign} (", 1)
    if poisoned == statement:  # guarded form nests differently
        poisoned = statement.replace(
            "{ s = (", f"{{ s = (1.0 {foreign} (", 1
        )
    poisoned = poisoned.replace(";", ");", 1)
    assert _classify(poisoned) is None
