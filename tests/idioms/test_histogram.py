"""Tests for histogram detection (§3.1.2)."""

from repro.frontend import compile_source
from repro.idioms import ReductionOp, find_reductions


def _detect(source):
    return find_reductions(compile_source(source))


def test_direct_histogram_detected():
    report = _detect(
        """
        int hist[64]; int keys[256]; int n;
        void f(void) {
            for (int i = 0; i < n; i++)
                hist[keys[i]] = hist[keys[i]] + 1;
        }
        """
    )
    assert report.counts() == (0, 1)
    histogram = report.histograms[0]
    assert histogram.op is ReductionOp.ADD
    assert not histogram.idx_affine
    assert histogram.base.short_name() == "@hist"


def test_increment_syntax_detected():
    report = _detect(
        """
        int hist[64]; int keys[256]; int n;
        void f(void) {
            for (int i = 0; i < n; i++) hist[keys[i]]++;
        }
        """
    )
    assert report.counts() == (0, 1)


def test_computed_bin_detected():
    report = _detect(
        """
        double hist[64]; double img[256]; int n;
        void f(void) {
            for (int i = 0; i < n; i++) {
                int bin = (int) (img[i] * 63.0);
                hist[bin] = hist[bin] + 1.0;
            }
        }
        """
    )
    assert report.counts() == (0, 1)


def test_guarded_histogram_detected():
    """EP-style: the update executes under a data-dependent guard."""
    report = _detect(
        """
        double hist[64]; double x[256]; int n;
        void f(void) {
            for (int i = 0; i < n; i++) {
                double v = x[i];
                if (v > 0.25) {
                    int bin = (int) (v * 63.0);
                    hist[bin] = hist[bin] + v;
                }
            }
        }
        """
    )
    assert report.counts() == (0, 1)


def test_binary_search_bin_detected():
    """tpacf: the bin index comes from a while-loop binary search."""
    report = _detect(
        """
        double hist[64]; double binb[65]; double data[256];
        int n; int nbins;
        void f(void) {
            for (int i = 0; i < n; i++) {
                double d = data[i];
                int lo = 0;
                int hi = nbins;
                while (lo < hi) {
                    int mid = (lo + hi) / 2;
                    if (d < binb[mid]) hi = mid; else lo = mid + 1;
                }
                hist[lo] = hist[lo] + 1.0;
            }
        }
        """
    )
    assert report.counts() == (0, 1)


def test_alias_checks_generated():
    report = _detect(
        """
        int hist[64]; int keys[256]; int n;
        void f(void) {
            for (int i = 0; i < n; i++) hist[keys[i]]++;
        }
        """
    )
    checks = report.histograms[0].runtime_checks
    assert [c.describe() for c in checks] == [
        "@hist does-not-alias @keys"
    ]


# -- negatives ------------------------------------------------------------------


def test_iterator_indexed_update_is_not_a_histogram():
    """a[i] += f(i) is a parallel write, not a histogram (cond. 3)."""
    report = _detect(
        """
        double acc[256]; double x[256]; int n;
        void f(void) {
            for (int i = 0; i < n; i++)
                acc[i] = acc[i] + x[i];
        }
        """
    )
    assert report.counts() == (0, 0)


def test_overwrite_scatter_is_not_a_histogram():
    report = _detect(
        """
        double grid[64]; double val[256]; int cell[256]; int n;
        void f(void) {
            for (int i = 0; i < n; i++)
                grid[cell[i]] = val[i];
        }
        """
    )
    assert report.counts() == (0, 0)


def test_bin_index_reading_histogram_rejected():
    report = _detect(
        """
        int hist[64]; int keys[256]; int n;
        void f(void) {
            for (int i = 0; i < n; i++) {
                int b = hist[keys[i]] % 64;
                hist[b] = hist[b] + 1;
            }
        }
        """
    )
    assert report.counts() == (0, 0)


def test_store_inside_inner_loop_rejected():
    """The SP rms pattern: the update sits in an inner loop (§6.1)."""
    report = _detect(
        """
        double rms[5]; double rhs[640]; int n;
        void f(void) {
            for (int i = 0; i < n; i++)
                for (int m = 0; m < 5; m++) {
                    double add = rhs[i*5 + m];
                    rms[m] = rms[m] + add * add;
                }
        }
        """
    )
    assert report.counts() == (0, 0)


def test_extra_read_of_histogram_rejected():
    report = _detect(
        """
        int hist[64]; int keys[256]; int n; int spy;
        void f(void) {
            for (int i = 0; i < n; i++) {
                hist[keys[i]] = hist[keys[i]] + 1;
                spy = hist[0];
            }
        }
        """
    )
    assert report.counts() == (0, 0)


def test_update_mixing_operators_rejected():
    report = _detect(
        """
        double hist[64]; int keys[256]; int n;
        void f(void) {
            for (int i = 0; i < n; i++)
                hist[keys[i]] = hist[keys[i]] * 0.5 + 1.0;
        }
        """
    )
    assert report.counts() == (0, 0)


def test_argmin_indexed_histogram_detected():
    """kmeans: the bin index comes from an inner argmin loop."""
    report = _detect(
        """
        double count[8]; double feat[512]; double cent[64];
        int n; int k; int f;
        void assign(void) {
            for (int i = 0; i < n; i++) {
                int best = 0;
                double bestd = 1000000000.0;
                for (int c = 0; c < k; c++) {
                    double d = 0.0;
                    for (int j = 0; j < f; j++) {
                        double diff = feat[i*f + j] - cent[c*f + j];
                        d = d + diff * diff;
                    }
                    if (d < bestd) { bestd = d; best = c; }
                }
                count[best] = count[best] + 1.0;
            }
        }
        """
    )
    scalars, histograms = report.counts()
    assert histograms == 1
    assert not report.histograms[0].idx_affine
