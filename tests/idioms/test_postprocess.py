"""Tests for the associativity classification post-processing step."""

from repro.frontend import compile_source
from repro.idioms import ReductionOp, classify_update
from repro.ir import PhiInst


def _acc_and_update(source, fn_name="f"):
    module = compile_source(source)
    fn = module.get_function(fn_name)
    from repro.analysis import LoopInfo

    info = LoopInfo(fn)
    loop = info.top_level_loops()[0]
    header = loop.header
    acc = next(p for p in header.phis() if not p.type.is_integer())
    latch_pred = next(
        p for p in header.predecessors() if p in loop.blocks
    )
    return acc, acc.incoming_for_block(latch_pred)


def _classify(body, decl="double a[16]; int n;"):
    source = f"""
    {decl}
    double f(void) {{
        double s = 1.0;
        for (int i = 0; i < n; i++) {{ {body} }}
        return s;
    }}
    """
    acc, update = _acc_and_update(source)
    return classify_update(acc, update)


def test_simple_add():
    assert _classify("s = s + a[i];") is ReductionOp.ADD


def test_add_chain_same_operator():
    assert _classify("s = s + a[i] + 1.0;") is ReductionOp.ADD


def test_subtract_is_additive():
    assert _classify("s = s - a[i];") is ReductionOp.ADD


def test_reverse_subtract_rejected():
    assert _classify("s = a[i] - s;") is None


def test_multiply():
    assert _classify("s = s * a[i];") is ReductionOp.MUL


def test_mixed_operators_rejected():
    assert _classify("s = s * 0.5 + a[i];") is None


def test_divide_rejected():
    assert _classify("s = s / a[i];") is None


def test_conditional_update_via_phi():
    assert _classify("if (a[i] > 0.0) s = s + a[i];") is ReductionOp.ADD


def test_conditional_with_two_updates_same_op():
    assert (
        _classify(
            "if (a[i] > 0.0) s = s + a[i]; else s = s + 1.0;"
        )
        is ReductionOp.ADD
    )


def test_conditional_with_conflicting_ops_rejected():
    assert (
        _classify("if (a[i] > 0.0) s = s + a[i]; else s = s * 2.0;")
        is None
    )


def test_select_max():
    assert _classify("s = a[i] > s ? a[i] : s;") is ReductionOp.MAX


def test_select_min():
    assert _classify("s = a[i] < s ? a[i] : s;") is ReductionOp.MIN


def test_select_min_swapped_arms():
    assert _classify("s = s < a[i] ? s : a[i];") is ReductionOp.MIN


def test_fmax_call():
    assert _classify("s = fmax(s, a[i]);") is ReductionOp.MAX


def test_fmin_call():
    assert _classify("s = fmin(a[i], s);") is ReductionOp.MIN


def test_fmax_chain_with_identity():
    assert _classify("s = fmax(s, fabs(a[i]));") is ReductionOp.MAX


def test_accumulator_used_twice_rejected():
    assert _classify("s = s + s * a[i];") is None


def test_overwrite_rejected():
    assert _classify("s = a[i];") is None
