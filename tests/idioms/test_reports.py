"""Tests for detection report records and the module-level driver."""

from repro.frontend import compile_source
from repro.idioms import find_reductions, find_reductions_in_function


SOURCE = """
double a[32]; int hist[16]; int keys[32]; int n;

double suma(void) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s = s + a[i];
    return s;
}

void count(void) {
    for (int i = 0; i < n; i++) hist[keys[i]]++;
}

int main(void) {
    n = 16;
    count();
    print_double(suma());
    return 0;
}
"""


def test_module_report_aggregates_functions():
    module = compile_source(SOURCE)
    report = find_reductions(module)
    assert report.counts() == (1, 1)
    assert report.solve_seconds > 0
    summary = report.summary()
    assert "1 scalar" in summary and "1 histogram" in summary


def test_per_function_driver():
    module = compile_source(SOURCE)
    suma = find_reductions_in_function(module.get_function("suma"), module)
    count = find_reductions_in_function(module.get_function("count"), module)
    assert len(suma.scalars) == 1 and not suma.histograms
    assert len(count.histograms) == 1 and not count.scalars


def test_reduction_names_are_stable_identifiers():
    module = compile_source(SOURCE)
    report = find_reductions(module)
    assert report.scalars[0].name.startswith("suma:")
    assert report.histograms[0].name.startswith("count:")
    assert "@hist" in report.histograms[0].name


def test_no_duplicate_solutions_per_reduction():
    """One record per accumulator / per histogram store, even though
    the raw solver may produce several assignments."""
    module = compile_source(SOURCE)
    report = find_reductions(module)
    scalar_keys = {(id(s.header), id(s.acc)) for s in report.scalars}
    histogram_keys = {
        (id(h.header), id(h.hist_store)) for h in report.histograms
    }
    assert len(scalar_keys) == len(report.scalars)
    assert len(histogram_keys) == len(report.histograms)


def test_main_loop_calls_do_not_confuse_detection():
    module = compile_source(SOURCE)
    report = find_reductions(module)
    main_records = [
        f for f in report.functions if f.function.name == "main"
    ]
    assert main_records
    assert not main_records[0].scalars
    assert not main_records[0].histograms


def test_release_solver_state_drops_contexts_and_caches():
    """Callers retaining reports long-term can shed the hoisted solver
    state (contexts, memoized proposals, solved prefixes)."""
    module = compile_source(SOURCE)
    report = find_reductions(module)
    caches = [
        f.solver_context.solver_cache for f in report.functions
    ]
    assert any(c.base_solutions for c in caches)  # prefixes were solved
    report.release_solver_state()
    assert all(f.solver_context is None for f in report.functions)
    assert all(not c.base_solutions and not c.proposal_memo
               for c in caches)
    # The detections themselves are untouched.
    assert report.counts() == (1, 1)
