"""Tests for scalar reduction detection (§3.1.1): positives and the
negative battery matching the paper's conditions."""

import pytest

from repro.frontend import compile_source
from repro.idioms import ReductionOp, find_reductions


def _detect(source):
    return find_reductions(compile_source(source))


def test_plain_sum_detected():
    report = _detect(
        """
        double a[16]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + a[i];
            return s;
        }
        """
    )
    assert report.counts() == (1, 0)
    assert report.scalars[0].op is ReductionOp.ADD
    assert [b.short_name() for b in report.scalars[0].input_bases] == ["@a"]


def test_product_detected():
    report = _detect(
        """
        double a[16]; int n;
        double f(void) {
            double p = 1.0;
            for (int i = 0; i < n; i++) p = p * a[i];
            return p;
        }
        """
    )
    assert report.counts() == (1, 0)
    assert report.scalars[0].op is ReductionOp.MUL


def test_guarded_sum_detected():
    report = _detect(
        """
        double a[16]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++)
                if (a[i] > 0.0) s = s + a[i];
            return s;
        }
        """
    )
    assert report.counts() == (1, 0)


def test_max_via_select_detected():
    report = _detect(
        """
        double a[16]; int n;
        double f(void) {
            double m = a[0];
            for (int i = 0; i < n; i++) m = a[i] > m ? a[i] : m;
            return m;
        }
        """
    )
    assert report.counts() == (1, 0)
    assert report.scalars[0].op is ReductionOp.MAX


def test_min_via_fmin_detected():
    report = _detect(
        """
        double a[16]; int n;
        double f(void) {
            double m = a[0];
            for (int i = 0; i < n; i++) m = fmin(m, a[i]);
            return m;
        }
        """
    )
    assert report.counts() == (1, 0)
    assert report.scalars[0].op is ReductionOp.MIN


def test_multiple_accumulators_in_one_loop():
    report = _detect(
        """
        double a[32]; int n;
        double f(void) {
            double s = 0.0;
            double sq = 0.0;
            for (int i = 0; i < n; i++) {
                s = s + a[i];
                sq = sq + a[i] * a[i];
            }
            return s + sq;
        }
        """
    )
    assert report.counts() == (2, 0)


def test_integer_counter_detected():
    report = _detect(
        """
        double a[32]; int n;
        int f(void) {
            int c = 0;
            for (int i = 0; i < n; i++)
                if (a[i] > 0.5) c = c + 1;
            return c;
        }
        """
    )
    assert report.counts() == (1, 0)


def test_subtraction_merges_as_sum():
    report = _detect(
        """
        double a[16]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s - a[i];
            return s;
        }
        """
    )
    assert report.counts() == (1, 0)
    assert report.scalars[0].op is ReductionOp.ADD


def test_multi_array_reduction_with_pure_calls():
    """§3.1.1: multiple arrays and complex pure computation allowed."""
    report = _detect(
        """
        double a[32]; double b[32]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++)
                s = s + sqrt(a[i] * a[i] + b[i] * b[i]);
            return s;
        }
        """
    )
    assert report.counts() == (1, 0)
    names = {b.short_name() for b in report.scalars[0].input_bases}
    assert names == {"@a", "@b"}


# -- negatives -----------------------------------------------------------------


def test_control_dependence_on_accumulator_rejected():
    """The §2 counterexample."""
    report = _detect(
        """
        double a[32]; int n;
        double f(void) {
            double s = 0.0;
            double t = 0.0;
            for (int i = 0; i < n; i++) {
                if (a[i] <= t) { t = t + a[i]; s = s + 1.0; }
            }
            return s + t;
        }
        """
    )
    assert report.counts() == (0, 0)


def test_mixed_operators_rejected():
    report = _detect(
        """
        double a[16]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = 0.5 * s + a[i];
            return s;
        }
        """
    )
    assert report.counts() == (0, 0)


def test_iterator_feeding_value_rejected():
    """Condition 4: the update is a term of x, array values and loop
    constants — not of the iterator."""
    report = _detect(
        """
        int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + i;
            return s;
        }
        """
    )
    assert report.counts() == (0, 0)


def test_indirect_read_rejected():
    """Condition 3: reads must be affine in the iterator."""
    report = _detect(
        """
        double a[64]; int idx[64]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + a[idx[i]];
            return s;
        }
        """
    )
    assert report.counts() == (0, 0)


def test_impure_call_rejected():
    report = _detect(
        """
        double a[16]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + a[i] * rand();
            return s;
        }
        """
    )
    assert report.counts() == (0, 0)


def test_accumulator_escaping_into_memory_rejected():
    report = _detect(
        """
        double a[16]; double trace[16]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) {
                s = s + a[i];
                trace[i] = s;
            }
            return s;
        }
        """
    )
    assert report.counts() == (0, 0)


def test_overwrite_is_not_a_reduction():
    report = _detect(
        """
        double a[16]; int n;
        double f(void) {
            double last = 0.0;
            for (int i = 0; i < n; i++) last = a[i];
            return last;
        }
        """
    )
    assert report.counts() == (0, 0)


def test_read_of_written_array_rejected():
    report = _detect(
        """
        double a[32]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) {
                a[i+1] = a[i] * 0.5;
                s = s + a[i];
            }
            return s;
        }
        """
    )
    assert report.counts() == (0, 0)


def test_inner_position_reduction_detected_once():
    """A nest-carried sum is reported at the innermost loop binding."""
    report = _detect(
        """
        double a[4096]; int rows; int cols;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < rows; i++)
                for (int j = 0; j < cols; j++)
                    s = s + a[i*cols + j];
            return s;
        }
        """
    )
    assert report.counts() == (1, 0)
    reduction = report.scalars[0]
    assert reduction.loop.depth == 2
