"""Tests for the for-loop idiom specification (Fig. 5)."""

from repro.frontend import compile_source
from repro.idioms import find_for_loops


def _loops(source, fn="f"):
    module = compile_source(source)
    return find_for_loops(module.get_function(fn), module)


def test_simple_counted_loop_matched():
    matches = _loops(
        """
        double a[16]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = 0.5 * s + a[i];
            return s;
        }
        """
    )
    assert len(matches) == 1
    match = matches[0]
    assert match.iter_begin.value == 0
    assert match.iter_step.value == 1
    assert match.loop.header is match.header


def test_loop_with_argument_bound_matched():
    matches = _loops(
        """
        double a[16];
        double f(int n) {
            double s = 0.0;
            for (int i = 2; i < n; i = i + 3) s = 0.5 * s + a[i];
            return s;
        }
        """
    )
    assert len(matches) == 1
    assert matches[0].iter_begin.value == 2
    assert matches[0].iter_step.value == 3


def test_nested_loops_both_matched():
    matches = _loops(
        """
        double a[64]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++)
                for (int j = 0; j < 8; j++)
                    s = 0.5 * s + a[i*8 + j];
            return s;
        }
        """
    )
    assert len(matches) == 2


def test_while_loop_with_variant_bound_not_matched():
    matches = _loops(
        """
        int f(int n) {
            int i = 0;
            int lim = n;
            while (i < lim) {
                lim = lim - 1;
                i = i + 1;
            }
            return i;
        }
        """
    )
    assert matches == []


def test_loop_with_early_exit_not_matched():
    matches = _loops(
        """
        double a[16]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) {
                if (a[i] < 0.0) break;
                s = 0.5 * s + a[i];
            }
            return s;
        }
        """
    )
    assert matches == []


def test_counted_while_loop_matches_for_idiom():
    """A while loop written as a counted loop has the same SSA shape."""
    matches = _loops(
        """
        double a[16]; int n;
        double f(void) {
            double s = 0.0;
            int i = 0;
            while (i < n) {
                s = 0.5 * s + a[i];
                i = i + 1;
            }
            return s;
        }
        """
    )
    assert len(matches) == 1
