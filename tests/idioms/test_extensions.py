"""Tests for the extension idioms (§8 future work)."""

from repro.frontend import compile_source
from repro.idioms import find_reductions
from repro.idioms.extensions import find_extended_reductions
from repro.idioms.reports import ReductionOp


def test_dot_product_idiom():
    module = compile_source(
        """
        double xs[64]; double ys[64]; double ws[64]; int n;
        double dot(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + xs[i] * ys[i];
            return s;
        }
        double norm(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + ws[i] * ws[i];
            return s;
        }
        double plain(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + xs[i];
            return s;
        }
        """
    )
    report = find_extended_reductions(module)
    names = {d.function.name for d in report.dot_products}
    assert names == {"dot"}  # norm uses one array twice; plain no product


def test_argminmax_idiom():
    module = compile_source(
        """
        double a[64]; int n;
        int argmin_of(void) {
            double best = 1000000.0;
            int pos = 0;
            for (int i = 0; i < n; i++) {
                if (a[i] < best) { best = a[i]; pos = i; }
            }
            return pos;
        }
        int argmax_of(void) {
            double best = -1000000.0;
            int pos = 0;
            for (int i = 0; i < n; i++) {
                if (a[i] > best) { best = a[i]; pos = i; }
            }
            return pos;
        }
        """
    )
    report = find_extended_reductions(module)
    kinds = {(m.function.name, m.kind) for m in report.argminmax}
    assert ("argmin_of", "min") in kinds
    assert ("argmax_of", "max") in kinds


def test_argminmax_not_reported_as_scalar_reduction():
    """The guard reads the accumulator, so the base spec must reject
    it — the pair is only detectable as the dedicated idiom."""
    module = compile_source(
        """
        double a[64]; int n;
        int argmin_of(void) {
            double best = 1000000.0;
            int pos = 0;
            for (int i = 0; i < n; i++) {
                if (a[i] < best) { best = a[i]; pos = i; }
            }
            return pos;
        }
        """
    )
    base = find_reductions(module)
    assert base.counts() == (0, 0)
    extended = find_extended_reductions(module)
    assert len(extended.argminmax) == 1


def test_nested_array_reduction_catches_sp_rms():
    """The §6.1 miss, recovered by the extension idiom."""
    module = compile_source(
        """
        double rms[5]; double rhs[640]; int n;
        void norms(void) {
            for (int i = 0; i < n; i++)
                for (int m = 0; m < 5; m++) {
                    double add = rhs[i*5 + m];
                    rms[m] = rms[m] + add * add;
                }
        }
        """
    )
    base = find_reductions(module)
    assert base.counts() == (0, 0)  # paper-faithful: the tool misses it
    extended = find_extended_reductions(module)
    assert len(extended.nested_array) == 1
    record = extended.nested_array[0]
    assert record.base.short_name() == "@rms"
    assert record.op is ReductionOp.ADD
    # Reported at the outer (privatizable) loop.
    assert record.header.name.startswith("for.cond")


def test_nested_array_reduction_rejects_outer_iterator_address():
    module = compile_source(
        """
        double acc[4096]; double rhs[4096]; int n;
        void writes(void) {
            for (int i = 0; i < n; i++)
                for (int m = 0; m < 5; m++)
                    acc[i*5 + m] = acc[i*5 + m] + rhs[i*5 + m];
        }
        """
    )
    extended = find_extended_reductions(module)
    # The address varies with the outer iterator: a parallel write.
    assert not extended.nested_array


def test_regular_histogram_not_double_reported_by_extension():
    module = compile_source(
        """
        int hist[64]; int keys[256]; int n;
        void f(void) {
            for (int i = 0; i < n; i++) hist[keys[i]]++;
        }
        """
    )
    base = find_reductions(module)
    assert base.counts() == (0, 1)
    extended = find_extended_reductions(module)
    assert not extended.nested_array


def test_extension_on_corpus_sp():
    """On the SP corpus program, the extension finds both rms-style
    norms (BT has one too) without disturbing the base counts."""
    from repro.workloads import program

    module = program("SP").fresh_module()
    base = find_reductions(module)
    assert base.counts() == (5, 0)
    extended = find_extended_reductions(module)
    assert len(extended.nested_array) == 1
    assert extended.nested_array[0].base.short_name() == "@rms"
