"""Tests for the ``python -m repro`` command line interface."""

import pytest

from repro.__main__ import main

SOURCE = """
double a[32]; int hist[8]; int keys[32]; int n;

double total(void) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s = s + a[i];
    return s;
}

void count(void) {
    for (int i = 0; i < n; i++) hist[keys[i]]++;
}

int main(void) {
    n = 32;
    for (int i = 0; i < n; i++) { a[i] = fmod(i * 0.7, 1.0); keys[i] = i % 8; }
    count();
    print_double(total());
    return 0;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    return str(path)


def test_detect_command(source_file, capsys):
    assert main(["detect", source_file]) == 0
    out = capsys.readouterr().out
    assert "1 scalar reduction(s), 1 histogram reduction(s)" in out
    assert "op=add" in out


def test_detect_with_baselines(source_file, capsys):
    assert main(["detect", source_file, "--baselines"]) == 0
    out = capsys.readouterr().out
    assert "icc model" in out
    assert "Polly model" in out


def test_emit_command(source_file, capsys):
    assert main(["emit", source_file]) == 0
    out = capsys.readouterr().out
    assert "define double @total()" in out
    assert "phi" in out


def test_parallelize_command(source_file, capsys):
    assert main(["parallelize", source_file, "--threads", "8"]) == 0
    out = capsys.readouterr().out
    assert "outlined:" in out
    assert "outputs match" in out


def test_detect_list_idioms_without_file(capsys):
    assert main(["detect", "--list-idioms"]) == 0
    out = capsys.readouterr().out
    assert "registered idioms:" in out
    for name in ("for-loop", "scalar-reduction", "histogram",
                 "dot-product", "argminmax", "nested-array-reduction"):
        assert name in out
    assert "forloop.icsl" in out
    assert "argminmax.icsl" in out


def test_detect_extended_flag(tmp_path, capsys):
    path = tmp_path / "dot.c"
    path.write_text(
        "double xs[16]; double ys[16]; int n;\n"
        "double dot(void) {\n"
        "    double s = 0.0;\n"
        "    for (int i = 0; i < n; i++) s = s + xs[i] * ys[i];\n"
        "    return s;\n"
        "}\n"
    )
    assert main(["detect", str(path), "--extended"]) == 0
    out = capsys.readouterr().out
    assert "extension dot-product" in out


def test_corpus_command_with_jobs_and_extended(capsys):
    assert main(["corpus", "--jobs", "2", "--extended"]) == 0
    out = capsys.readouterr().out
    assert "Figure 8 (NAS): reductions detected" in out
    assert "paper vs measured" in out
    assert "extension idioms:" in out
    assert "nested-array-reduction" in out


def test_detect_without_file_or_list_flag_errors(capsys):
    assert main(["detect"]) == 2
    assert "FILE.c" in capsys.readouterr().err


def test_detect_feedback_round_trip(source_file, tmp_path, capsys):
    feedback = tmp_path / "feedback.json"
    assert main(["detect", source_file, "--extended",
                 "--save-feedback", str(feedback)]) == 0
    out = capsys.readouterr().out
    assert "feedback saved to" in out
    assert feedback.exists()
    assert main(["detect", source_file, "--extended",
                 "--feedback-from", str(feedback)]) == 0
    out = capsys.readouterr().out
    assert "1 scalar reduction(s), 1 histogram reduction(s)" in out


def test_detect_reports_bad_feedback_artifact(source_file, tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{\"version\": 99, \"specs\": {}}")
    assert main(["detect", source_file, "--feedback-from", str(bad)]) == 2
    assert "cannot load feedback artifact" in capsys.readouterr().err


def test_corpus_feedback_round_trip(tmp_path, capsys):
    feedback = tmp_path / "corpus-feedback.json"
    assert main(["corpus", "--save-feedback", str(feedback)]) == 0
    out = capsys.readouterr().out
    assert "feedback saved to" in out
    assert main(["corpus", "--feedback-from", str(feedback)]) == 0
    out = capsys.readouterr().out
    assert "Figure 8 (NAS): reductions detected" in out


def test_detect_with_user_spec_file(source_file, tmp_path, capsys):
    spec = tmp_path / "rmw.icsl"
    spec.write_text(
        "idiom read-modify-write {\n"
        "  order: st v p\n"
        "  opcode(st, store, v, p)\n"
        "  (opcode(v, add, _, _) | opcode(v, fadd, _, _))\n"
        "}\n"
    )
    assert main(["detect", source_file, "--spec", str(spec),
                 "--list-idioms"]) == 0
    out = capsys.readouterr().out
    assert "read-modify-write" in out
    assert "custom" in out
    assert "match(es)" in out


def test_detect_reports_malformed_spec_file(source_file, tmp_path, capsys):
    bad = tmp_path / "bad.icsl"
    bad.write_text("idiom broken {\n  order: x\n  frobnicate(x)\n}\n")
    assert main(["detect", source_file, "--spec", str(bad)]) == 2
    err = capsys.readouterr().err
    assert "cannot load spec file" in err
    assert "line 3" in err


def test_detect_reports_missing_spec_file(source_file, capsys):
    assert main(["detect", source_file, "--spec", "/nonexistent.icsl"]) == 2
    assert "cannot load spec file" in capsys.readouterr().err


def test_detect_reports_binary_spec_file(source_file, tmp_path, capsys):
    binary = tmp_path / "binary.icsl"
    binary.write_bytes(b"\xff\xfe\x00garbage")
    assert main(["detect", source_file, "--spec", str(binary)]) == 2
    assert "cannot load spec file" in capsys.readouterr().err


def test_parallelize_reports_nothing_to_do(tmp_path, capsys):
    path = tmp_path / "empty.c"
    path.write_text("int main(void) { print_int(1); return 0; }")
    assert main(["parallelize", str(path)]) == 1
    assert "nothing to parallelize" in capsys.readouterr().out


def test_detect_renders_spec_diagnostic(source_file, tmp_path, capsys):
    """The malformed-spec path shows the caret-rendered diagnostic."""
    bad = tmp_path / "bad.icsl"
    bad.write_text("idiom broken {\n  order: x\n  frobnicate(x)\n}\n")
    assert main(["detect", source_file, "--spec", str(bad)]) == 2
    err = capsys.readouterr().err
    assert f"{bad}:3:3: error:" in err
    assert "^" in err


def test_detect_lint_gate_rejects_bad_spec(source_file, tmp_path, capsys):
    """--lint rejects a parseable spec with an unconstrained label."""
    bad = tmp_path / "loose.icsl"
    bad.write_text(
        "idiom loose {\n"
        "  order: x ghost\n\n"
        "  opcode(x, add, _, _)\n"
        "}\n"
    )
    assert main(["detect", source_file, "--spec", str(bad)]) == 0
    capsys.readouterr()
    assert main(
        ["detect", source_file, "--spec", str(bad), "--lint"]
    ) == 2
    err = capsys.readouterr().err
    assert "ICSL001" in err
    assert "ghost" in err


def test_lint_shipped_specs_clean(capsys):
    assert main(["lint", "--strict"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


def test_lint_json_report(capsys):
    import json

    assert main(["lint", "--strict", "--json", "--no-cross"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["summary"]["error"] == 0
    assert payload["summary"]["warning"] == 0
    assert all(d["code"].startswith("ICSL") for d in payload["diagnostics"])


def test_lint_bad_file_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.icsl"
    bad.write_text("idiom broken {\n  order: x\n  frobnicate(x)\n}\n")
    assert main(["lint", str(bad)]) == 2
    out = capsys.readouterr().out
    assert "ICSL000" in out


def test_lint_strict_promotes_warnings(tmp_path, capsys):
    spec = tmp_path / "warny.icsl"
    spec.write_text(
        "idiom warny {\n"
        "  order: header body\n\n"
        "  branch(header, body)\n"
        "  dominates(header, header)\n"
        "}\n"
    )
    assert main(["lint", str(spec)]) == 0
    capsys.readouterr()
    assert main(["lint", str(spec), "--strict"]) == 1
    assert "ICSL005" in capsys.readouterr().out


# -- feedback lifecycle commands ----------------------------------------------


@pytest.fixture(scope="module")
def explored_artifact(tmp_path_factory):
    """A feedback artifact with measured order rows (Parboil slice,
    ε=0.5, seed=3 — a combination known to sample that slice)."""
    from repro.pipeline import (detect_corpus, feedback_from_report,
                                save_feedback)
    from repro.workloads import corpus_keys

    small = [key for key in corpus_keys() if key[1] == "Parboil"]
    report = detect_corpus(jobs=1, keys=small, explore=0.5,
                           explore_seed=3)
    path = tmp_path_factory.mktemp("feedback") / "explored.json"
    save_feedback(feedback_from_report(report), str(path))
    return str(path)


def test_feedback_inspect_is_deterministic(explored_artifact, capsys):
    assert main(["feedback", "inspect", explored_artifact]) == 0
    first = capsys.readouterr().out
    assert f"feedback artifact {explored_artifact}" in first
    assert "fingerprint" in first
    assert "spec for-loop" in first
    assert "[incumbent]" in first
    assert "derive:" in first
    assert main(["feedback", "inspect", explored_artifact]) == 0
    assert capsys.readouterr().out == first


def test_feedback_inspect_json(explored_artifact, capsys):
    import json

    assert main(["feedback", "inspect", explored_artifact, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 3
    assert payload["orders"]
    assert "derived_orders" in payload


def test_feedback_diff_exit_codes(explored_artifact, tmp_path, capsys):
    from repro.pipeline import load_feedback, save_feedback

    assert main(["feedback", "diff", explored_artifact,
                 explored_artifact]) == 0
    assert "identical:" in capsys.readouterr().out

    decayed = tmp_path / "decayed.json"
    save_feedback(load_feedback(explored_artifact).decay(0.5),
                  str(decayed))
    assert main(["feedback", "diff", explored_artifact,
                 str(decayed)]) == 1
    out = capsys.readouterr().out
    assert f"A {explored_artifact}:" in out
    assert f"B {decayed}:" in out
    assert "spec " in out


def test_feedback_decay_cli(explored_artifact, tmp_path, capsys):
    from repro.pipeline import load_feedback

    out_path = tmp_path / "decayed.json"
    assert main(["feedback", "decay", explored_artifact,
                 "--keep", "0.5", "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "before:" in out
    assert "after:" in out
    original = load_feedback(explored_artifact)
    decayed = load_feedback(str(out_path))  # verifies its fingerprint
    assert len(decayed.orders) <= len(original.orders)

    assert main(["feedback", "decay", explored_artifact,
                 "--keep", "1.5", "--out", str(out_path)]) == 2
    assert "keep must be within" in capsys.readouterr().err


def test_feedback_commands_reject_bad_artifact(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{\"version\": 99, \"specs\": {}}")
    assert main(["feedback", "inspect", str(bad)]) == 2
    err = capsys.readouterr().err
    assert "cannot load feedback artifact" in err
    assert str(bad) in err
    assert "hint:" in err


def test_corpus_explore_records_measured_orders(tmp_path, capsys):
    feedback = tmp_path / "explored.json"
    assert main(["corpus", "--jobs", "2", "--explore", "0.25",
                 "--explore-seed", "1",
                 "--save-feedback", str(feedback)]) == 0
    out = capsys.readouterr().out
    assert "feedback saved to" in out
    assert "measured order(s)" in out
    assert main(["feedback", "inspect", str(feedback)]) == 0
    assert "[incumbent]" in capsys.readouterr().out
