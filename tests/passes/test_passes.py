"""Tests for mem2reg, DCE, CSE, LICM and CFG simplification."""

from repro.frontend import compile_source, lower_source
from repro.ir import (
    AllocaInst,
    GEPInst,
    LoadInst,
    Module,
    PhiInst,
    verify_module,
)
from repro.passes import promote_allocas, promotable_allocas
from repro.passes.cse import local_cse
from repro.passes.licm import hoist_invariant_loads
from repro.passes.simplify import (
    dead_code_elimination,
    merge_straightline_blocks,
    remove_trivial_phis,
    remove_unreachable_blocks,
)
from repro.runtime import Interpreter, Memory


SOURCE = """
double a[32]; int n;
double f(void) {
    double s = 0.0;
    double unusedcalc = 0.0;
    for (int i = 0; i < n; i++) {
        unusedcalc = unusedcalc + 1.0;
        if (a[i] > 0.25) {
            s = s + a[i];
        }
    }
    return s;
}
"""


def _run(module: Module) -> float:
    memory = Memory(module)
    memory.buffers["n"].data[0] = 20
    for i in range(32):
        memory.buffers["a"].data[i] = (i * 0.37) % 1.0
    interp = Interpreter(module, memory)
    return interp.call(module.get_function("f"), [])


def test_mem2reg_differential_semantics():
    """Alloca form and SSA form must compute the same value."""
    before = lower_source(SOURCE)
    after = lower_source(SOURCE)
    for fn in after.defined_functions():
        remove_unreachable_blocks(fn)
        promote_allocas(fn)
    verify_module(after)
    assert abs(_run(before) - _run(after)) < 1e-12


def test_promotable_allocas_excludes_arrays():
    module = lower_source(
        """
        double f(void) {
            double x = 1.0;
            double buf[4];
            buf[0] = x;
            return buf[0];
        }
        """
    )
    fn = module.get_function("f")
    promotable = promotable_allocas(fn)
    names = {a.name for a in promotable}
    assert "x" in names
    assert "buf" not in names


def test_mem2reg_inserts_phi_at_join():
    module = lower_source(
        """
        int f(int c) {
            int x = 0;
            if (c > 0) { x = 1; } else { x = 2; }
            return x;
        }
        """
    )
    fn = module.get_function("f")
    remove_unreachable_blocks(fn)
    promote_allocas(fn)
    phis = [i for i in fn.instructions() if isinstance(i, PhiInst)]
    assert len(phis) >= 1


def test_dce_removes_dead_phi_cycles():
    module = compile_source(SOURCE)
    fn = module.get_function("f")
    # "unusedcalc" feeds only itself: the pipeline must have removed it.
    phi_names = {i.name for i in fn.instructions()
                 if isinstance(i, PhiInst)}
    assert not any("unused" in name for name in phi_names)


def test_cse_unifies_redundant_loads():
    module = lower_source(
        """
        double a[8];
        double f(int i) { return a[i] * a[i]; }
        """
    )
    fn = module.get_function("f")
    remove_unreachable_blocks(fn)
    promote_allocas(fn)
    before = sum(1 for i in fn.instructions() if isinstance(i, LoadInst))
    removed = local_cse(fn)
    after = sum(1 for i in fn.instructions() if isinstance(i, LoadInst))
    assert removed >= 1
    assert after < before


def test_cse_respects_intervening_stores():
    module = lower_source(
        """
        double a[8];
        double f(int i) {
            double x = a[i];
            a[i] = 0.0;
            return x + a[i];
        }
        """
    )
    fn = module.get_function("f")
    remove_unreachable_blocks(fn)
    promote_allocas(fn)
    local_cse(fn)
    loads = [
        i for i in fn.instructions()
        if isinstance(i, LoadInst) and isinstance(i.pointer, GEPInst)
    ]
    assert len(loads) == 2  # the store kills the first load's value


def test_licm_hoists_global_bound_load():
    module = compile_source(
        """
        double a[16]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + a[i];
            return s;
        }
        """
    )
    fn = module.get_function("f")
    header = next(b for b in fn.blocks if b.name.startswith("for.cond"))
    header_loads = [
        i for i in header.instructions if isinstance(i, LoadInst)
    ]
    # The load of n must have been hoisted out of the loop.
    scalar_loads = [
        l for l in header_loads if not isinstance(l.pointer, GEPInst)
    ]
    assert not scalar_loads


def test_licm_does_not_hoist_stored_global():
    module = compile_source(
        """
        int n;
        void f(void) {
            for (int i = 0; i < n; i++) {
                n = n - 1;
            }
        }
        """
    )
    fn = module.get_function("f")
    loop_blocks = [b for b in fn.blocks if b.name.startswith("for")]
    loads_in_loop = [
        i for b in loop_blocks for i in b.instructions
        if isinstance(i, LoadInst)
    ]
    assert loads_in_loop  # still re-loaded every iteration


def test_unreachable_block_removal():
    module = lower_source(
        """
        int f(void) {
            return 1;
            return 2;
        }
        """
    )
    fn = module.get_function("f")
    removed = remove_unreachable_blocks(fn)
    assert removed >= 1
    verify_module(module, check_dominance=False)


def test_merge_straightline_blocks_preserves_semantics():
    module = lower_source(SOURCE)
    for fn in module.defined_functions():
        remove_unreachable_blocks(fn)
        promote_allocas(fn)
        dead_code_elimination(fn)
        remove_trivial_phis(fn)
    expected = _run(module)
    for fn in module.defined_functions():
        merge_straightline_blocks(fn)
    verify_module(module)
    assert abs(_run(module) - expected) < 1e-12
