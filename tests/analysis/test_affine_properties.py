"""Hypothesis property tests for the Affine algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Affine
from repro.ir import DOUBLE, Value
from repro.ir.types import INT64


def _symbols():
    # A small pool of distinct symbol objects shared across draws.
    return [Value(INT64, f"s{i}") for i in range(4)]


_POOL = _symbols()


@st.composite
def affines(draw):
    result = Affine.constant(draw(st.integers(-5, 5)))
    for symbol in _POOL[: draw(st.integers(0, 3))]:
        coeff = draw(st.integers(-3, 3))
        result = result + Affine.parameter(symbol).scaled(coeff)
    return result


@given(affines(), affines())
@settings(max_examples=50, deadline=None)
def test_addition_commutes(a, b):
    assert a + b == b + a


@given(affines(), affines(), affines())
@settings(max_examples=50, deadline=None)
def test_addition_associates(a, b, c):
    assert (a + b) + c == a + (b + c)


@given(affines())
@settings(max_examples=50, deadline=None)
def test_subtraction_cancels(a):
    assert (a - a) == Affine.constant(0)
    assert not (a - a).terms


@given(affines(), st.integers(-4, 4))
@settings(max_examples=50, deadline=None)
def test_scaling_matches_repeated_addition(a, k):
    if k >= 0:
        total = Affine.constant(0)
        for _ in range(k):
            total = total + a
        assert a.scaled(k) == total


@given(affines(), affines())
@settings(max_examples=50, deadline=None)
def test_multiplication_commutes_without_ivs(a, b):
    assert a.multiply(b) == b.multiply(a)


@given(affines(), affines(), affines())
@settings(max_examples=30, deadline=None)
def test_multiplication_distributes(a, b, c):
    left = a.multiply(b + c)
    right = a.multiply(b) + a.multiply(c)
    assert left == right


def test_iv_products_rejected():
    iv1 = Value(INT64, "i")
    iv2 = Value(INT64, "j")
    a = Affine.induction(iv1)
    b = Affine.induction(iv2)
    assert a.multiply(b) is None
    assert a.multiply(a) is None
    # but IV times constant is fine
    assert a.multiply(Affine.constant(3)).coefficient_of(iv1) == 3


def test_parameter_product_flag():
    p = Value(INT64, "p")
    q = Value(INT64, "q")
    product = Affine.parameter(p).multiply(Affine.parameter(q))
    assert product is not None
    assert product.has_parameter_products()
    plain = Affine.parameter(p).scaled(3) + Affine.constant(1)
    assert not plain.has_parameter_products()
