"""Tests for purity analysis and control dependences."""

from repro.analysis.controldep import control_dependences, controlling_conditions
from repro.analysis.purity import PurityAnalysis
from repro.frontend import compile_source


def test_intrinsic_purity_flags():
    module = compile_source(
        """
        double f(double x) { return sqrt(x) + fmax(x, 1.0); }
        int g(void) { return rand(); }
        """
    )
    purity = PurityAnalysis(module)
    assert purity.is_pure(module.get_function("sqrt"))
    assert purity.is_pure(module.get_function("fmax"))
    assert not purity.is_pure(module.get_function("rand"))


def test_defined_function_purity_derived():
    module = compile_source(
        """
        double square(double x) { return x * x; }
        double norm(double x, double y) {
            return sqrt(square(x) + square(y));
        }
        """
    )
    purity = PurityAnalysis(module)
    assert purity.is_pure(module.get_function("square"))
    assert purity.is_pure(module.get_function("norm"))


def test_global_store_makes_function_impure():
    module = compile_source(
        """
        double state;
        double bump(double x) { state = state + x; return state; }
        """
    )
    purity = PurityAnalysis(module)
    assert not purity.is_pure(module.get_function("bump"))


def test_impure_callee_propagates():
    module = compile_source(
        """
        double noisy(double x) { return x + rand(); }
        double wrapper(double x) { return noisy(x) * 2.0; }
        """
    )
    purity = PurityAnalysis(module)
    assert not purity.is_pure(module.get_function("noisy"))
    assert not purity.is_pure(module.get_function("wrapper"))


def test_local_alloca_access_keeps_function_pure():
    module = compile_source(
        """
        double tabulate(double x) {
            double buf[4];
            buf[0] = x;
            buf[1] = x * x;
            return buf[0] + buf[1];
        }
        """
    )
    purity = PurityAnalysis(module)
    assert purity.is_pure(module.get_function("tabulate"))


def test_control_dependence_of_guarded_block():
    module = compile_source(
        """
        double a[64]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) {
                if (a[i] > 0.5) {
                    s = s + a[i];
                }
            }
            return s;
        }
        """
    )
    fn = module.get_function("f")
    deps = control_dependences(fn)
    then_block = next(b for b in fn.blocks if b.name.startswith("if.then"))
    body = next(b for b in fn.blocks if b.name.startswith("for.body"))
    assert body in deps[then_block]
    conditions = controlling_conditions(then_block, deps)
    assert len(conditions) >= 1
    assert any(c.opcode == "fcmp" for c in conditions)


def test_loop_body_control_dependent_on_header():
    module = compile_source(
        """
        double a[64]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + a[i];
            return s;
        }
        """
    )
    fn = module.get_function("f")
    deps = control_dependences(fn)
    header = next(b for b in fn.blocks if b.name.startswith("for.cond"))
    body = next(b for b in fn.blocks if b.name.startswith("for.body"))
    assert header in deps[body]
    # The header is control dependent on itself (loop-carried).
    assert header in deps[header]
