"""Tests for dominator/post-dominator trees, including a differential
property test against networkx on random CFGs."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import CFG, DominatorTree, dominance_frontiers
from repro.ir import (
    INT64,
    FunctionType,
    IRBuilder,
    Module,
    const_bool,
    const_int,
)


def _diamond():
    module = Module("m")
    fn = module.add_function("f", FunctionType(INT64, ()), [])
    entry = fn.add_block("entry")
    left = fn.add_block("left")
    right = fn.add_block("right")
    join = fn.add_block("join")
    b = IRBuilder(entry)
    b.cond_br(const_bool(True), left, right)
    IRBuilder(left).br(join)
    IRBuilder(right).br(join)
    IRBuilder(join).ret(const_int(0))
    return fn, entry, left, right, join


def test_diamond_dominators():
    fn, entry, left, right, join = _diamond()
    tree = DominatorTree.compute(fn)
    assert tree.dominates(entry, join)
    assert tree.dominates(entry, left)
    assert not tree.dominates(left, join)
    assert tree.idom[join] is entry
    assert tree.strictly_dominates(entry, join)
    assert not tree.strictly_dominates(entry, entry)


def test_diamond_postdominators():
    fn, entry, left, right, join = _diamond()
    post = DominatorTree.compute_post(fn)
    assert post.dominates(join, entry)
    assert post.dominates(join, left)
    assert not post.dominates(left, entry)


def test_dominance_frontiers_of_diamond():
    fn, entry, left, right, join = _diamond()
    frontiers = dominance_frontiers(fn)
    assert frontiers[left] == {join}
    assert frontiers[right] == {join}
    assert frontiers[entry] == set()


def test_dom_tree_depth_and_children():
    fn, entry, left, right, join = _diamond()
    tree = DominatorTree.compute(fn)
    assert tree.depth(entry) == 0
    assert tree.depth(left) == 1
    assert set(tree.children(entry)) == {left, right, join}


def _build_function_from_edges(n_blocks: int, edges):
    """Build an IR function with the given block-index CFG."""
    module = Module("m")
    fn = module.add_function("f", FunctionType(INT64, ()), [])
    blocks = [fn.add_block(f"b{i}") for i in range(n_blocks)]
    successors = {i: sorted({d for s, d in edges if s == i}) for i in
                  range(n_blocks)}
    for i, block in enumerate(blocks):
        succ = successors[i]
        b = IRBuilder(block)
        if len(succ) == 0:
            b.ret(const_int(0))
        elif len(succ) == 1:
            b.br(blocks[succ[0]])
        else:
            b.cond_br(const_bool(True), blocks[succ[0]], blocks[succ[1]])
    return fn, blocks


@st.composite
def random_cfg(draw):
    n = draw(st.integers(min_value=2, max_value=9))
    edges = set()
    # A spine guarantees reachability of a chain; extra edges add joins
    # and loops.
    for i in range(n - 1):
        edges.add((i, i + 1))
    extra = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=8,
    ))
    edges.update((s, d) for s, d in extra)
    # Cap out-degree at 2 (conditional branch limit).
    capped = set()
    out = {i: 0 for i in range(n)}
    for s, d in sorted(edges):
        if out[s] < 2:
            capped.add((s, d))
            out[s] += 1
    return n, capped


@given(random_cfg())
@settings(max_examples=60, deadline=None)
def test_dominators_match_networkx(cfg):
    n, edges = cfg
    fn, blocks = _build_function_from_edges(n, edges)
    tree = DominatorTree.compute(fn)

    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edges)
    reachable = nx.descendants(graph, 0) | {0}
    reference = nx.immediate_dominators(graph, 0)

    for i in reachable:
        if i == 0:
            assert tree.idom[blocks[0]] is None
        else:
            expected = reference[i]
            assert tree.idom[blocks[i]] is blocks[expected]


@given(random_cfg())
@settings(max_examples=40, deadline=None)
def test_dominance_is_partial_order(cfg):
    n, edges = cfg
    fn, blocks = _build_function_from_edges(n, edges)
    tree = DominatorTree.compute(fn)
    reachable = CFG(fn).reachable()
    nodes = [b for b in blocks if b in reachable]
    for a in nodes:
        assert tree.dominates(a, a)
        for b in nodes:
            if tree.dominates(a, b) and tree.dominates(b, a):
                assert a is b
