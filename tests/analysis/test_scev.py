"""Tests for scalar evolution / affine analysis."""

from repro.analysis import Affine, LoopInfo, ScalarEvolution
from repro.frontend import compile_source
from repro.ir import GEPInst, LoadInst


def _first_loop(fn):
    info = LoopInfo(fn)
    scev = ScalarEvolution(fn, info)
    return info, scev


def _loads_in(fn):
    return [i for i in fn.instructions() if isinstance(i, LoadInst)
            and isinstance(i.pointer, GEPInst)]


def test_affine_constant_algebra():
    two = Affine.constant(2)
    three = Affine.constant(3)
    assert (two + three).constant_term == 5
    assert (two - three).constant_term == -1
    assert two.scaled(4).constant_term == 8
    assert two.multiply(three).constant_term == 6
    assert two.is_constant()


def test_affine_iv_detection_simple_index():
    module = compile_source(
        """
        double a[64]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + a[2*i + 3];
            return s;
        }
        """
    )
    fn = module.get_function("f")
    info, scev = _first_loop(fn)
    loop = info.top_level_loops()[0]
    load = _loads_in(fn)[0]
    affine = scev.affine_at(load.pointer.index, loop)
    assert affine is not None
    assert affine.constant_term == 3
    ivs = affine.induction_variables()
    assert len(ivs) == 1
    iv = next(iter(ivs))
    assert affine.coefficient_of(iv) == 2
    assert affine.iv_coefficients_constant()


def test_affine_parametric_coefficient_flagged():
    module = compile_source(
        """
        double a[4096]; int rows; int cols;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < rows; i++)
                for (int j = 0; j < cols; j++)
                    s = s + a[i*cols + j];
            return s;
        }
        """
    )
    fn = module.get_function("f")
    info, scev = _first_loop(fn)
    inner = [l for l in info.loops if l.depth == 2][0]
    load = _loads_in(fn)[0]
    affine = scev.affine_at(load.pointer.index, inner)
    assert affine is not None
    # Relative to the inner loop, i is a parameter, so ``i*cols`` is a
    # parameter product: affine for us, a delinearization failure for
    # the polyhedral baseline.
    assert affine.has_parameter_products()


def test_product_of_iv_and_enclosing_iv():
    module = compile_source(
        """
        double a[4096]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    s = 0.5 * s + a[i*j];
            return s;
        }
        """
    )
    fn = module.get_function("f")
    info, scev = _first_loop(fn)
    inner = [l for l in info.loops if l.depth == 2][0]
    outer = [l for l in info.loops if l.depth == 1][0]
    load = _loads_in(fn)[0]
    # From the inner loop, i is invariant: i*j is affine in j with a
    # symbolic coefficient (and a parameter product for Polly).
    affine = scev.affine_at(load.pointer.index, inner)
    assert affine is not None
    assert not affine.iv_coefficients_constant()
    # From the outer loop, i and j are both IVs of the nest region —
    # but j is not an enclosing IV of the outer loop, so nothing is
    # affine there.
    assert scev.affine_at(load.pointer.index, outer) is None


def test_indirect_index_is_not_affine():
    module = compile_source(
        """
        double a[64]; int idx[64]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = 0.5 * s + a[idx[i]];
            return s;
        }
        """
    )
    fn = module.get_function("f")
    info, scev = _first_loop(fn)
    loop = info.top_level_loops()[0]
    loads = _loads_in(fn)
    outer_load = [l for l in loads if l.type.is_float()][0]
    assert scev.affine_at(outer_load.pointer.index, loop) is None


def test_loop_bounds_recognised():
    module = compile_source(
        """
        double a[64];
        double f(int n) {
            double s = 0.0;
            for (int i = 2; i < n; i++) s = s + a[i];
            return s;
        }
        """
    )
    fn = module.get_function("f")
    info, scev = _first_loop(fn)
    loop = info.top_level_loops()[0]
    bounds = scev.loop_bounds(loop)
    assert bounds is not None
    assert bounds.predicate == "slt"
    assert bounds.start.value == 2
    assert bounds.step.value == 1
    assert bounds.end is fn.args[0]


def test_loop_bounds_reject_variant_end():
    module = compile_source(
        """
        double a[64]; int n;
        double f(void) {
            double s = 0.0;
            int lim = n;
            for (int i = 0; i < lim; i++) {
                s = s + a[i];
                lim = lim - 1;
            }
            return s;
        }
        """
    )
    fn = module.get_function("f")
    info, scev = _first_loop(fn)
    loop = info.top_level_loops()[0]
    assert scev.loop_bounds(loop) is None


def test_induction_variable_with_step_two():
    module = compile_source(
        """
        double a[64]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i = i + 2) s = s + a[i];
            return s;
        }
        """
    )
    fn = module.get_function("f")
    info, scev = _first_loop(fn)
    loop = info.top_level_loops()[0]
    iv = scev.induction_variable(loop)
    assert iv is not None
    assert iv.step.value == 2


def test_enclosing_iv_is_symbol_in_inner_loop():
    module = compile_source(
        """
        double a[4096]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++)
                for (int j = 0; j < 64; j++)
                    s = s + a[i*64 + j];
            return s;
        }
        """
    )
    fn = module.get_function("f")
    info, scev = _first_loop(fn)
    inner = [l for l in info.loops if l.depth == 2][0]
    load = _loads_in(fn)[0]
    affine = scev.affine_at(load.pointer.index, inner)
    assert affine is not None
    # j is the inner IV; the enclosing i appears as a parameter with a
    # constant multiplier (64), which keeps the form Polly-affine.
    assert len(affine.induction_variables()) == 1
    assert len(affine.parameters()) == 1
    assert affine.iv_coefficients_constant()
    assert not affine.has_parameter_products()
