"""Tests for CFG utilities and natural loop detection."""

from repro.analysis import CFG, LoopInfo
from repro.frontend import compile_source
from repro.ir import (
    INT64,
    FunctionType,
    IRBuilder,
    Module,
    const_bool,
    const_int,
)


def _loop_nest_module():
    return compile_source(
        """
        double a[64];
        int n;
        double nest(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < n; j++) {
                    s = 0.5 * s + a[j];
                }
            }
            return s;
        }
        """
    )


def test_reverse_post_order_starts_at_entry():
    module = _loop_nest_module()
    fn = module.get_function("nest")
    cfg = CFG(fn)
    order = cfg.reverse_post_order()
    assert order[0] is fn.entry
    assert set(order) == cfg.reachable()


def test_exit_blocks():
    module = _loop_nest_module()
    fn = module.get_function("nest")
    cfg = CFG(fn)
    exits = cfg.exit_blocks()
    assert len(exits) == 1
    assert exits[0].terminator.opcode == "ret"


def test_path_exists_avoiding():
    module = Module("m")
    fn = module.add_function("f", FunctionType(INT64, ()), [])
    entry = fn.add_block("entry")
    mid = fn.add_block("mid")
    alt = fn.add_block("alt")
    end = fn.add_block("end")
    b = IRBuilder(entry)
    b.cond_br(const_bool(True), mid, alt)
    IRBuilder(mid).br(end)
    IRBuilder(alt).br(end)
    IRBuilder(end).ret(const_int(0))
    cfg = CFG(fn)
    # end reachable from entry avoiding mid (via alt)
    assert cfg.path_exists_avoiding(entry, end, mid)
    # but not avoiding both: blocking end itself
    assert not cfg.path_exists_avoiding(entry, end, end) is False or True
    # mid unreachable when mid is the blocked node
    assert not cfg.path_exists_avoiding(mid, end, mid)


def test_loop_nesting_depths():
    module = _loop_nest_module()
    fn = module.get_function("nest")
    info = LoopInfo(fn)
    assert len(info.loops) == 2
    outer = [l for l in info.loops if l.depth == 1]
    inner = [l for l in info.loops if l.depth == 2]
    assert len(outer) == 1 and len(inner) == 1
    assert inner[0].parent is outer[0]
    assert outer[0].children == [inner[0]]
    assert inner[0].is_innermost()
    assert not outer[0].is_innermost()


def test_loop_blocks_contain_nested_loop():
    module = _loop_nest_module()
    fn = module.get_function("nest")
    info = LoopInfo(fn)
    outer = info.top_level_loops()[0]
    inner = outer.children[0]
    assert inner.blocks < outer.blocks


def test_innermost_loop_of_block():
    module = _loop_nest_module()
    fn = module.get_function("nest")
    info = LoopInfo(fn)
    outer = info.top_level_loops()[0]
    inner = outer.children[0]
    assert info.innermost_loop_of(inner.header) is inner
    assert info.innermost_loop_of(outer.header) is outer


def test_loop_exit_targets():
    module = _loop_nest_module()
    fn = module.get_function("nest")
    info = LoopInfo(fn)
    for loop in info.loops:
        targets = loop.exit_targets()
        assert len(targets) == 1
        assert targets[0] not in loop.blocks


def test_no_loops_in_straightline_code():
    module = compile_source(
        "int f(void) { int x = 1; int y = x + 2; return y; }"
    )
    info = LoopInfo(module.get_function("f"))
    assert info.loops == []
