"""Differential suite for the compiled plan engine.

The interpreted solver (:mod:`repro.constraints.solver`) is the
oracle; :func:`repro.constraints.plan.detect_plan` must match it

* in **solutions** — the identical list, order included;
* in **statistics** — every :class:`SolverStats` counter equal, except
  the eval reconciliation invariant ``interpreted.constraint_evals ==
  compiled.constraint_evals + compiled.evals_pruned`` (the compiled
  engine performs fewer evaluations but accounts for every skipped one
  position-exactly);
* in **fingerprints** — corpus reports are engine-independent.

The matrix runs every shipped ``.icsl`` spec over the differential C
corpus, then hypothesis-randomized label/conjunct orders over the
mini-specs, plus targeted coverage of the plan-only machinery: the
partial-prefix replay trie (hit, miss and limit-bounded paths), the
numpy batch filter and its fallback leg, and the plan/codegen cache.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import (
    ConstraintAnd,
    IdiomSpec,
    Opcode,
    SharedSolverCache,
    SolverStats,
    detect,
)
from repro.constraints import plan as plan_module
from repro.constraints.plan import _BATCH_MIN, _UNBOUND, compile_plan, detect_plan
from repro.idioms import BUILTIN_IDIOMS, IdiomRegistry
from test_differential import CORPUS, MINI_SPECS, contexts_for, solution_set

REGISTRY = IdiomRegistry()


# -- the reusable differential check ------------------------------------------


def assert_stats_reconcile(interpreted: SolverStats, compiled: SolverStats):
    """Every counter equal; evals equal modulo the recorded pruning."""
    assert compiled.assignments_tried == interpreted.assignments_tried
    assert compiled.partial_rejections == interpreted.partial_rejections
    assert compiled.solutions == interpreted.solutions
    assert compiled.fallbacks_to_universe == interpreted.fallbacks_to_universe
    assert compiled.candidates_per_label == interpreted.candidates_per_label
    assert compiled.candidates_per_prefix == interpreted.candidates_per_prefix
    assert compiled.proposal_cache_hits == interpreted.proposal_cache_hits
    assert compiled.prefix_reuses == interpreted.prefix_reuses
    assert (compiled.constraint_evals + compiled.evals_pruned
            == interpreted.constraint_evals)


def assert_engines_agree(ctx, spec):
    """Run both engines on fresh caches; returns the compiled stats."""
    interp_stats, comp_stats = SolverStats(), SolverStats()
    interpreted = detect(ctx, spec, stats=interp_stats,
                         cache=SharedSolverCache(), engine="interpreted")
    compiled = detect(ctx, spec, stats=comp_stats,
                      cache=SharedSolverCache(), engine="compiled")
    assert compiled == interpreted  # the list: solutions AND their order
    assert_stats_reconcile(interp_stats, comp_stats)
    return comp_stats


# -- compiled ≡ interpreted on every shipped spec -----------------------------


@pytest.mark.parametrize("idiom", sorted(BUILTIN_IDIOMS))
@pytest.mark.parametrize("program", sorted(CORPUS))
def test_compiled_matches_interpreted_full_specs(idiom, program):
    spec = REGISTRY.spec(idiom)
    for ctx in contexts_for(CORPUS[program]):
        stats = assert_engines_agree(ctx, spec)
        # The redundancy pass must actually have fired on the full
        # specs (their c_k construction generates vacuous checks).
        assert stats.conjuncts_pruned > 0


@pytest.mark.parametrize("program", sorted(CORPUS))
def test_compiled_matches_interpreted_shared_cache(program):
    """One shared cache accumulated across all six specs — prefix
    replay included — must agree engine to engine: the caches are
    interoperable (same memo keys), so the compiled engine sees the
    same hits, reuses and candidate lists the interpreter sees."""
    for ctx in contexts_for(CORPUS[program]):
        interp_stats, comp_stats = SolverStats(), SolverStats()
        interp_cache, comp_cache = SharedSolverCache(), SharedSolverCache()
        for name in sorted(BUILTIN_IDIOMS):
            spec = REGISTRY.spec(name)
            interpreted = detect(ctx, spec, stats=interp_stats,
                                 cache=interp_cache, engine="interpreted")
            compiled = detect(ctx, spec, stats=comp_stats,
                              cache=comp_cache, engine="compiled")
            assert compiled == interpreted, name
        assert interp_stats.prefix_reuses > 0  # replay actually engaged
        assert_stats_reconcile(interp_stats, comp_stats)


def test_detect_routes_engines():
    """``engine=`` selects the implementation; the default is the
    compiled engine (observable through its pruning counters)."""
    spec = REGISTRY.spec("scalar-reduction")
    ctx = contexts_for(CORPUS["scalar-sum"])[0]
    default_stats = SolverStats()
    default = detect(ctx, spec, stats=default_stats,
                     cache=SharedSolverCache())
    assert default_stats.evals_pruned > 0
    interp_stats = SolverStats()
    interpreted = detect(ctx, spec, stats=interp_stats,
                         cache=SharedSolverCache(), engine="interpreted")
    assert interp_stats.evals_pruned == 0
    assert interp_stats.conjuncts_pruned == 0
    assert default == interpreted
    # The naive full-tree walk stays reachable, and stays interpreted.
    naive_stats = SolverStats()
    naive = detect(ctx, spec, stats=naive_stats,
                   cache=SharedSolverCache(), incremental=False)
    assert naive == interpreted
    assert naive_stats.evals_pruned == 0
    with pytest.raises(ValueError, match="unknown solver engine"):
        detect(ctx, spec, engine="jit")


# -- hypothesis: random label and conjunct orders -----------------------------

_HYPO_PROGRAMS = ("scalar-sum", "histogram", "argminmax")
_HYPO_CONTEXTS = {
    name: contexts_for(CORPUS[name]) for name in _HYPO_PROGRAMS
}


@given(
    idiom=st.sampled_from(sorted(MINI_SPECS)),
    program=st.sampled_from(_HYPO_PROGRAMS),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_random_orders_compiled_matches_interpreted(idiom, program, data):
    """Any label enumeration order and any conjunct order must leave
    the two engines in lockstep — the plan's schedule, pruning pass and
    memo-key construction are order-sensitive by design, so this is
    where a position-accounting bug would surface."""
    base = MINI_SPECS[idiom]()
    labels = tuple(
        data.draw(st.permutations(list(base.label_order)), label="labels")
    )
    conjuncts = list(base.constraint.children)
    shuffled = data.draw(st.permutations(conjuncts), label="conjuncts")
    spec = IdiomSpec(f"{base.name}-shuffled", labels,
                     ConstraintAnd(*shuffled))
    for ctx in _HYPO_CONTEXTS[program]:
        assert_engines_agree(ctx, spec)
        # Solution *sets* are also order-independent (the order of
        # discovery moves, the set of witnesses cannot).
        found = solution_set(detect(ctx, spec), labels)
        baseline = solution_set(detect(ctx, base), base.label_order)
        canon = {
            tuple(t[labels.index(l)] for l in base.label_order)
            for t in found
        }
        assert canon == baseline


# -- partial-prefix replay trie -----------------------------------------------


def _partial_prefix_spec(depth: int = 8) -> IdiomSpec:
    """scalar-reduction with its tail rotated so only the first
    ``depth`` labels still match the declared for-loop base — full
    prefix replay is off, the trie path is on."""
    scalar = REGISTRY.spec("scalar-reduction")
    order = scalar.label_order
    rotated = order[:depth] + (order[depth + 1], order[depth],) + order[depth + 2:]
    spec = scalar.reordered(rotated)
    assert spec.base is None  # full-prefix replay impossible...
    assert spec.declared_base is not None  # ...but the base is declared
    return spec


def test_partial_prefix_trie_replay_matches_interpreted():
    spec = _partial_prefix_spec()
    plan = compile_plan(spec)
    assert plan.prefix_len == 0
    assert plan.partial_base is spec.declared_base
    assert plan.partial_len == 8
    for program in ("scalar-sum", "nested-sum", "iterator-carried"):
        for ctx in contexts_for(CORPUS[program]):
            interpreted = detect(ctx, spec, cache=SharedSolverCache(),
                                 engine="interpreted")
            stats = SolverStats()
            compiled = detect_plan(ctx, spec, stats=stats,
                                   cache=SharedSolverCache())
            assert compiled == interpreted
            # The first unbounded search pays for the frontier and
            # replays it (the interpreter has no trie, so raw stats
            # diverge by the shared-base accounting — solutions and
            # solution counts cannot).
            assert stats.trie_reuses == 1
            assert stats.solutions == len(interpreted)


def test_partial_prefix_trie_hit_and_miss_paths():
    spec = _partial_prefix_spec()
    for ctx in contexts_for(CORPUS["scalar-sum"]):
        cache = SharedSolverCache()
        # Miss: a limit-bounded search on a cold cache must not compute
        # the frontier (limit must stay cheap) — plain DFS instead.
        cold_stats = SolverStats()
        bounded = detect_plan(ctx, spec, stats=cold_stats, limit=1,
                              cache=cache)
        assert cold_stats.trie_reuses == 0
        assert not cache.prefix_trie
        # Fill: the unbounded search computes and stores the frontier.
        warm_stats = SolverStats()
        full = detect_plan(ctx, spec, stats=warm_stats, cache=cache)
        assert warm_stats.trie_reuses == 1
        key = (spec.declared_base, 8)
        assert key in cache.prefix_trie
        assert bounded == full[:1]
        # Hit: the stored frontier is replayed, not recomputed — the
        # second search tries strictly fewer assignments.
        replay_stats = SolverStats()
        again = detect_plan(ctx, spec, stats=replay_stats, cache=cache)
        assert again == full
        assert replay_stats.trie_reuses == 1
        if warm_stats.assignments_tried:
            assert (replay_stats.assignments_tried
                    < warm_stats.assignments_tried)
        # ...and a bounded search replays it too, never recomputing.
        bounded_warm = SolverStats()
        head = detect_plan(ctx, spec, stats=bounded_warm, limit=1,
                           cache=cache)
        assert head == full[:1]
        assert bounded_warm.trie_reuses == 1


# -- numpy batch filter and its fallback leg ----------------------------------


class _NoProposeOpcode(Opcode):
    """An opcode atom stripped of its proposer: every search for its
    label falls back to the whole value universe, which is exactly the
    situation the vectorized batch filter exists for."""

    def propose(self, ctx, assignment, label):
        return None

    def propose_implies_partial(self, bound, label):
        return False


def _universe_fallback_spec() -> IdiomSpec:
    return IdiomSpec(
        "batch-probe",
        ("update", "lhs"),
        ConstraintAnd(
            _NoProposeOpcode("update", "fadd", (None, None),
                             commutative=True),
            _NoProposeOpcode("lhs", "phi", ()),
        ),
    )


@pytest.mark.parametrize("program", ("nested-sum", "nested-rms"))
def test_batch_filter_matches_interpreted(program, monkeypatch):
    """Universe-fallback searches over batches past ``_BATCH_MIN`` —
    the numpy mask path — must agree with the interpreter candidate for
    candidate, and with the compiled engine's own pure-Python leg when
    numpy is taken away (the generated code reads ``plan._np`` live)."""
    spec = _universe_fallback_spec()
    exercised = False
    for ctx in contexts_for(CORPUS[program]):
        if len(ctx.universe) >= _BATCH_MIN:
            exercised = True
        with_numpy = SolverStats()
        vectorized = detect(ctx, spec, stats=with_numpy,
                            cache=SharedSolverCache(), engine="compiled")
        assert with_numpy.fallbacks_to_universe > 0
        stats = assert_engines_agree(ctx, spec)
        monkeypatch.setattr(plan_module, "_np", None)
        without_numpy = SolverStats()
        scalar = detect(ctx, spec, stats=without_numpy,
                        cache=SharedSolverCache(), engine="compiled")
        monkeypatch.undo()
        assert scalar == vectorized
        assert without_numpy.canonical() == with_numpy.canonical()
        assert stats.fallbacks_to_universe == with_numpy.fallbacks_to_universe
    assert exercised  # at least one function crossed the batch cutoff


# -- plan construction and codegen invariants ---------------------------------


def test_plan_is_cached_per_spec_and_slots_are_restored():
    spec = REGISTRY.spec("histogram")
    plan = compile_plan(spec)
    assert compile_plan(spec) is plan  # cached on the spec object
    assert plan.conjuncts_pruned > 0
    assert "def _search(" in plan.search_src  # the generated source ships
    ctx = contexts_for(CORPUS["histogram"])[0]
    detect_plan(ctx, spec, cache=SharedSolverCache())
    # Every exit path of the generated search restores the reusable
    # per-plan slot buffer — a stale binding would leak one search's
    # values into the next.
    assert all(slot is _UNBOUND for slot in plan._slots)


def test_reordered_spec_compiles_its_own_plan():
    spec = REGISTRY.spec("scalar-reduction")
    rotated = _partial_prefix_spec()
    assert compile_plan(spec) is not compile_plan(rotated)
    assert compile_plan(rotated).order == rotated.label_order
