"""Tests for generalized graph domination (the flow constraints)."""

from repro.analysis import LoopInfo
from repro.constraints import FlowChecker, FlowPolicy, SolverContext
from repro.frontend import compile_source


def _setup(source, function="f"):
    module = compile_source(source)
    fn = module.get_function(function)
    ctx = SolverContext(fn, module)
    loop = ctx.loop_info.top_level_loops()[0]
    header = loop.header
    acc = None
    iterator = None
    for phi in header.phis():
        if phi.type.is_float():
            acc = phi
        else:
            iterator = phi
    update = acc.incoming_for_block(
        next(p for p in header.predecessors() if p in loop.blocks)
    )
    return ctx, loop, header, acc, iterator, update


GOOD = """
double a[32]; int n;
double f(void) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        if (a[i] > 0.5) { s = s + a[i]; }
    }
    return s;
}
"""


def test_good_reduction_update_passes():
    ctx, loop, header, acc, iterator, update = _setup(GOOD)
    checker = FlowChecker(ctx, loop, exempt_blocks=(header,))
    data = FlowPolicy(extra_sources=(acc,), rejected=(iterator,),
                      index_sources=(iterator,), require_affine_index=True)
    control = FlowPolicy(rejected=(iterator, acc),
                         index_sources=(iterator,),
                         require_affine_index=True)
    result = checker.check(update, data, control)
    assert result.ok
    assert result.loads  # a[i] feeds the slice
    assert id(acc) in result.visited


def test_paper_counterexample_rejected():
    """§2: changing the condition to t1 <= sx breaks the reduction."""
    source = """
    double a[32]; int n;
    double f(void) {
        double s = 0.0;
        double t = 0.0;
        for (int i = 0; i < n; i++) {
            if (a[i] <= t) { t = t + a[i]; s = s + 1.0; }
        }
        return s + t;
    }
    """
    module = compile_source(source)
    fn = module.get_function("f")
    ctx = SolverContext(fn, module)
    loop = ctx.loop_info.top_level_loops()[0]
    header = loop.header
    checker = FlowChecker(ctx, loop, exempt_blocks=(header,))
    phis = [p for p in header.phis() if p.type.is_float()]
    iterator = next(p for p in header.phis() if p.type.is_integer())
    for acc in phis:
        update = acc.incoming_for_block(
            next(p for p in header.predecessors() if p in loop.blocks)
        )
        data = FlowPolicy(extra_sources=(acc,), rejected=(iterator,),
                          index_sources=(iterator,),
                          require_affine_index=True)
        control = FlowPolicy(rejected=(iterator, acc),
                             index_sources=(iterator,),
                             require_affine_index=True)
        result = checker.check(update, data, control)
        # Both accumulators fail: each is control dependent on a
        # loop-carried value (t reads itself; s reads t).
        assert not result.ok


def test_impure_call_rejected():
    source = """
    double a[32]; int n;
    double f(void) {
        double s = 0.0;
        for (int i = 0; i < n; i++) s = s + a[i] * rand();
        return s;
    }
    """
    ctx, loop, header, acc, iterator, update = _setup(source)
    checker = FlowChecker(ctx, loop, exempt_blocks=(header,))
    data = FlowPolicy(extra_sources=(acc,), rejected=(iterator,),
                      index_sources=(iterator,))
    result = checker.check(update, data)
    assert not result.ok
    assert "impure" in result.reason


def test_pure_call_traversed():
    source = """
    double a[32]; int n;
    double f(void) {
        double s = 0.0;
        for (int i = 0; i < n; i++) s = s + sqrt(fabs(a[i]));
        return s;
    }
    """
    ctx, loop, header, acc, iterator, update = _setup(source)
    checker = FlowChecker(ctx, loop, exempt_blocks=(header,))
    data = FlowPolicy(extra_sources=(acc,), rejected=(iterator,),
                      index_sources=(iterator,), require_affine_index=True)
    result = checker.check(update, data)
    assert result.ok
    assert len(result.calls) == 2


def test_load_from_stored_base_rejected():
    source = """
    double a[32]; double b[32]; int n;
    double f(void) {
        double s = 0.0;
        for (int i = 0; i < n; i++) {
            b[i] = a[i];
            s = s + b[i];
        }
        return s;
    }
    """
    ctx, loop, header, acc, iterator, update = _setup(source)
    checker = FlowChecker(ctx, loop, exempt_blocks=(header,))
    data = FlowPolicy(extra_sources=(acc,), rejected=(iterator,),
                      index_sources=(iterator,), require_affine_index=True)
    result = checker.check(update, data)
    assert not result.ok
    assert "stores to" in result.reason


def test_forbidden_base_rejected():
    source = """
    double a[32]; int n;
    double f(void) {
        double s = 0.0;
        for (int i = 0; i < n; i++) s = s + a[i];
        return s;
    }
    """
    ctx, loop, header, acc, iterator, update = _setup(source)
    base = ctx.module.get_global("a")
    checker = FlowChecker(ctx, loop, exempt_blocks=(header,))
    data = FlowPolicy(extra_sources=(acc,), rejected=(iterator,),
                      forbidden_bases=(base,), index_sources=(iterator,))
    result = checker.check(update, data)
    assert not result.ok
    assert "forbidden base" in result.reason


def test_non_affine_index_rejected_when_required():
    source = """
    double a[64]; int idx[64]; int n;
    double f(void) {
        double s = 0.0;
        for (int i = 0; i < n; i++) s = s + a[idx[i]];
        return s;
    }
    """
    ctx, loop, header, acc, iterator, update = _setup(source)
    checker = FlowChecker(ctx, loop, exempt_blocks=(header,))
    strict = FlowPolicy(extra_sources=(acc,), rejected=(iterator,),
                        index_sources=(iterator,),
                        require_affine_index=True)
    assert not checker.check(update, strict).ok
    relaxed = FlowPolicy(extra_sources=(acc,), rejected=(iterator,),
                         index_sources=(iterator,))
    assert checker.check(update, relaxed).ok


def test_header_phi_recurrence_rejected():
    """Another header PHI feeding the value is an intermediate result."""
    source = """
    double a[32]; int n;
    double f(void) {
        double s = 0.0;
        double t = 1.0;
        for (int i = 0; i < n; i++) {
            s = s + t;
            t = t * 0.5;
        }
        return s + t;
    }
    """
    ctx, loop, header, acc, iterator, update = _setup(source)
    # _setup picks one float phi; make sure we evaluate s (which reads t)
    for phi in header.phis():
        if phi.name.startswith("s"):
            acc = phi
    update = acc.incoming_for_block(
        next(p for p in header.predecessors() if p in loop.blocks)
    )
    checker = FlowChecker(ctx, loop, exempt_blocks=(header,))
    data = FlowPolicy(extra_sources=(acc,), rejected=(iterator,),
                      index_sources=(iterator,), require_affine_index=True)
    result = checker.check(update, data)
    assert not result.ok
    assert "loop-carried" in result.reason
