"""Tests for the static analyzer (``repro.constraints.analysis``).

The seeded mutation suite corrupts the shipped specs one class at a
time and asserts each mutation is flagged with its expected ``ICSL0xx``
code; the property tests assert the analyzer never crashes and is
byte-deterministic on generated specs; the reconciliation tests pin
the pruning diagnostics to the plan compiler's own counters.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import (
    IdiomSpec,
    Opcode,
    SpecFileError,
    analyze_registry,
    analyze_spec,
    cross_spec_diagnostics,
    lint_spec_files,
)
from repro.constraints.analysis import (
    DIAGNOSTIC_CODES,
    exit_code,
    render_report,
    report_json,
    severity_counts,
)
from repro.constraints.plan import compile_plan
from repro.constraints.specfile import (
    BUILTIN_SPEC_FILES,
    builtin_spec_path,
    load_spec_file,
    parse_spec_text,
    render_spec_text,
)
from repro.idioms.registry import IdiomRegistry


def _builtin_paths():
    return [builtin_spec_path(name) for name in BUILTIN_SPEC_FILES]


def _spec_text(name):
    with open(builtin_spec_path(name)) as handle:
        return handle.read()


def _codes(diags, gating_only=True):
    return sorted({
        d.code for d in diags
        if not gating_only or d.severity != "note"
    })


# -- shipped specs are clean --------------------------------------------------


def test_shipped_specs_clean_under_strict():
    """Zero false positives: the six shipped specs produce no errors
    and no warnings, only engine-pruning notes."""
    diags, failed = lint_spec_files(_builtin_paths())
    assert not failed
    counts = severity_counts(diags)
    assert counts["error"] == 0
    assert counts["warning"] == 0
    assert counts["note"] > 0
    assert exit_code(diags, strict=True, parse_failed=failed) == 0


def test_registry_cross_analysis_clean():
    """No shipped idiom pair is reported as subsuming another."""
    diags = analyze_registry(IdiomRegistry())
    assert _codes(diags) == []
    assert all(d.code == "ICSL009" for d in diags)


# -- the seeded mutation suite ------------------------------------------------


def test_mutation_dropped_conjunct_flags_unconstrained_label():
    """Dropping the only conjunct mentioning ``pos_candidate`` leaves
    the label silently over-matching — ICSL001."""
    text = _spec_text("argminmax")
    assert "phi2(pos_update, pos, pos_candidate)" in text
    mutated = "\n".join(
        line for line in text.splitlines()
        if "phi2(pos_update" not in line
    )
    spec = parse_spec_text(mutated, path="mut.icsl")["argminmax"]
    diags = analyze_spec(spec)
    hits = [d for d in diags if d.code == "ICSL001"]
    assert hits, _codes(diags)
    assert any("pos_candidate" in d.message for d in hits)
    assert all(d.severity == "error" for d in hits)


def test_mutation_renamed_order_label_is_a_parse_error():
    """Renaming a label only on the order line makes the block fail to
    load — surfaced as ICSL000 with the file position."""
    mutated = _spec_text("for-loop").replace("order: header",
                                             "order: headerx")
    with pytest.raises(SpecFileError):
        parse_spec_text(mutated, path="mut.icsl")
    # Through the file driver the same mutation becomes ICSL000.
    import os
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "mut.icsl")
        with open(path, "w") as handle:
            handle.write(mutated)
        diags, failed = lint_spec_files([path])
    assert failed
    assert [d.code for d in diags] == ["ICSL000"]
    assert diags[0].severity == "error"
    assert diags[0].path == path


def test_mutation_swapped_atom_arguments_flag_kind_conflict():
    """Swapping ``inblock(iterator, header)`` makes ``header`` both a
    block and an instruction — ICSL003."""
    mutated = _spec_text("for-loop").replace(
        "inblock(iterator, header)", "inblock(header, iterator)"
    )
    spec = parse_spec_text(mutated, path="mut.icsl")["for-loop"]
    diags = analyze_spec(spec)
    hits = [d for d in diags if d.code == "ICSL003"]
    assert hits, _codes(diags)
    assert all(d.severity == "error" for d in hits)
    assert any("'header'" in d.message for d in hits)
    # Spans anchor at the mutated statement line.
    lines = mutated.splitlines()
    assert any(
        d.line is not None and "inblock(header" in lines[d.line - 1]
        for d in hits
    )


def test_mutation_broken_extends_prefix_flagged():
    """Moving ``acc`` to the front of scalar-reduction's order breaks
    the for-loop prefix — ICSL008."""
    text = _spec_text("scalar-reduction")
    order_line = next(
        line for line in text.splitlines() if "order:" in line
    )
    labels = order_line.split(":", 1)[1].split()
    mutated_order = "  order: " + " ".join(labels[-1:] + labels[:-1])
    mutated = text.replace(order_line, mutated_order)
    spec = parse_spec_text(mutated, path="mut.icsl")["scalar-reduction"]
    diags = analyze_spec(spec)
    hits = [d for d in diags if d.code == "ICSL008"]
    assert hits, _codes(diags)
    assert "for-loop" in hits[0].message
    assert spec.base is None and spec.declared_base is not None


def test_mutation_duplicated_conjunct_flagged():
    text = _spec_text("for-loop").replace(
        "sese(body, latch)", "sese(body, latch)\n  sese(body, latch)"
    )
    spec = parse_spec_text(text, path="mut.icsl")["for-loop"]
    diags = analyze_spec(spec)
    hits = [d for d in diags if d.code == "ICSL006"]
    assert hits, _codes(diags)
    assert "sese(body, latch)" in hits[0].message


def test_mutation_implied_conjunct_flagged():
    """``sese(body, latch)`` implies ``dominates(body, latch)``; adding
    the weaker conjunct after it is flagged ICSL007."""
    text = _spec_text("for-loop").replace(
        "sese(body, latch)", "sese(body, latch)\n  dominates(body, latch)"
    )
    spec = parse_spec_text(text, path="mut.icsl")["for-loop"]
    diags = analyze_spec(spec)
    hits = [d for d in diags if d.code == "ICSL007"]
    assert hits, _codes(diags)
    assert "sese" in hits[0].message


def test_mutation_constant_conjuncts_flagged():
    text = _spec_text("for-loop").replace(
        "sese(body, latch)",
        "sese(body, latch)\n  dominates(body, body)\n"
        "  strictlydominates(latch, latch)",
    )
    spec = parse_spec_text(text, path="mut.icsl")["for-loop"]
    diags = analyze_spec(spec)
    codes = _codes(diags)
    assert "ICSL005" in codes  # dominates(body, body): always true
    assert "ICSL004" in codes  # strictlydominates(latch, latch): never


def test_unproposable_label_flagged():
    """An order that binds an opcode operand before its instruction has
    no guaranteed proposer at that depth — ICSL002."""
    spec = IdiomSpec("demo", ("y", "x"), Opcode("x", "add", ("y", None)))
    diags = analyze_spec(spec, pruning=False)
    hits = [d for d in diags if d.code == "ICSL002"]
    assert [d.message for d in hits]
    assert "'y'" in hits[0].message
    # The fixed order is clean.
    good = IdiomSpec("demo2", ("x", "y"), Opcode("x", "add", ("y", None)))
    assert not [
        d for d in analyze_spec(good, pruning=False)
        if d.code == "ICSL002"
    ]


# -- pruning reconciliation ---------------------------------------------------


@pytest.mark.parametrize("name", list(BUILTIN_SPEC_FILES))
def test_pruning_diagnostics_reconcile_with_plan(name):
    """The analyzer's pruning counts equal the plan compiler's own
    ``conjuncts_pruned`` — diagnostic-for-decision, no drift."""
    spec = load_spec_file(builtin_spec_path(name))[name]
    diags = analyze_spec(spec)
    total = sum(
        d.count or 0 for d in diags
        if d.code in ("ICSL006", "ICSL007", "ICSL009")
    )
    plan = compile_plan(spec)
    assert total == plan.conjuncts_pruned == len(plan.pruning_decisions)


# -- suppressions -------------------------------------------------------------

_SUPPRESSED = """\
idiom demo {
  order: header body

  branch(header, body)
  dominates(header, header)  # lint: ignore[ICSL005]
}
"""


def test_conjunct_suppression_and_roundtrip():
    spec = parse_spec_text(_SUPPRESSED, path="demo.icsl")["demo"]
    diags = analyze_spec(spec)
    assert "ICSL005" not in _codes(diags)
    assert "ICSL012" not in _codes(diags)
    # The suppression survives render -> parse.
    rendered = render_spec_text({"demo": spec})
    assert "lint: ignore[ICSL005]" in rendered
    reparsed = parse_spec_text(rendered, path="demo2.icsl")["demo"]
    assert "ICSL005" not in _codes(analyze_spec(reparsed))


def test_spec_level_suppression():
    text = (
        "idiom demo {  # lint: ignore[ICSL005]\n"
        "  order: header body\n\n"
        "  branch(header, body)\n"
        "  dominates(header, header)\n"
        "}\n"
    )
    spec = parse_spec_text(text, path="demo.icsl")["demo"]
    diags = analyze_spec(spec)
    assert "ICSL005" not in _codes(diags)
    rendered = render_spec_text({"demo": spec})
    assert "lint: ignore[ICSL005]" in rendered


def test_unused_suppression_flagged():
    text = _SUPPRESSED.replace("ignore[ICSL005]", "ignore[ICSL005, ICSL006]")
    spec = parse_spec_text(text, path="demo.icsl")["demo"]
    diags = analyze_spec(spec)
    hits = [d for d in diags if d.code == "ICSL012"]
    assert len(hits) == 1
    assert "ICSL006" in hits[0].message


# -- cross-spec subsumption ---------------------------------------------------


def test_duplicate_registration_reports_subsumption():
    base = load_spec_file(builtin_spec_path("scalar-reduction"))
    copy_text = _spec_text("scalar-reduction").replace(
        "idiom scalar-reduction", "idiom scalar-copy"
    )
    copy = parse_spec_text(copy_text, path="copy.icsl")["scalar-copy"]
    diags = cross_spec_diagnostics([base["scalar-reduction"], copy])
    assert [d.code for d in diags] == ["ICSL010"]
    assert "same solutions" in diags[0].message


def test_extends_ancestry_not_reported():
    """scalar-reduction refines for-loop by design — no ICSL010."""
    specs = load_spec_file(builtin_spec_path("scalar-reduction"))
    pair = [specs["scalar-reduction"], specs["scalar-reduction"].declared_base]
    assert cross_spec_diagnostics(pair) == []


# -- registry lint gate -------------------------------------------------------


def test_registry_gate_accepts_builtins():
    registry = IdiomRegistry(lint=True)
    assert len(registry) == len(BUILTIN_SPEC_FILES)


def test_registry_gate_rejects_bad_spec():
    registry = IdiomRegistry(lint=True)
    bad = IdiomSpec("custom-bad", ("x", "ghost"), Opcode("x", "add"))
    with pytest.raises(SpecFileError) as exc:
        registry.register(bad)
    assert "ICSL001" in str(exc.value)
    assert "custom-bad" not in registry


def test_registry_gate_is_detection_neutral():
    """A lint-gated registry produces byte-identical detection reports
    (the gate runs only static analysis)."""
    from repro.frontend import compile_source
    from repro.idioms import find_reductions

    module = compile_source(
        """
        double a[16]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + a[i];
            return s;
        }
        """
    )
    plain = find_reductions(module, registry=IdiomRegistry())
    gated = find_reductions(module, registry=IdiomRegistry(lint=True))
    assert plain.counts() == gated.counts()
    assert [s.name for s in plain.scalars] == [s.name for s in gated.scalars]
    assert [
        (s.op, sorted(b.short_name() for b in s.input_bases))
        for s in plain.scalars
    ] == [
        (s.op, sorted(b.short_name() for b in s.input_bases))
        for s in gated.scalars
    ]


def test_apply_orders_keeps_lint_metadata():
    registry = IdiomRegistry()
    original = registry.spec("for-loop")
    order = tuple(reversed(original.label_order))
    registry.apply_orders({"for-loop": order})
    rebuilt = registry.spec("for-loop")
    assert rebuilt.origin == original.origin
    assert rebuilt.lint_ignores == original.lint_ignores


# -- error rendering ----------------------------------------------------------


def test_spec_file_error_render_has_caret():
    try:
        parse_spec_text(
            "idiom broken {\n  order: x\n  frobnicate(x)\n}\n",
            path="bad.icsl",
        )
    except SpecFileError as exc:
        rendered = exc.render()
    else:  # pragma: no cover
        pytest.fail("expected SpecFileError")
    lines = rendered.splitlines()
    assert lines[0] == "bad.icsl:3:3: error: unknown atom 'frobnicate'"
    assert lines[1] == "    frobnicate(x)"
    assert lines[2] == "    ^"
    # The caret column lines up with the offending token.
    assert lines[1][lines[2].index("^")] == "f"


def test_spec_file_error_column_points_at_bad_token():
    try:
        parse_spec_text(
            "idiom broken {\n  order: x\n  edge(x x)\n}\n",
            path="bad.icsl",
        )
    except SpecFileError as exc:
        assert exc.line == 3
        assert exc.column is not None
        assert exc.render().count("^") == 1


# -- determinism and robustness ----------------------------------------------

_LABELS = ("a", "b", "c", "d")

_ATOM_TEMPLATES = (
    "branch({0}, {1})",
    "edge({0}, {1})",
    "dominates({0}, {1})",
    "strictlydominates({0}, {1})",
    "sese({0}, {1})",
    "inblock({0}, {1})",
    "opcode({0}, add, {1}, {2})",
    "phi2({0}, {1}, {2})",
    "distinct({0}, {1})",
    "constant({0})",
)


@st.composite
def _random_spec_text(draw):
    statements = draw(st.lists(
        st.tuples(
            st.sampled_from(_ATOM_TEMPLATES),
            st.lists(st.sampled_from(_LABELS), min_size=3, max_size=3),
        ),
        min_size=1, max_size=6,
    ))
    rendered = [template.format(*labels)
                for template, labels in statements]
    used = sorted({
        label for _, labels in statements for label in labels
    })
    order = draw(st.permutations(used))
    return (
        "idiom fuzz {\n"
        + f"  order: {' '.join(order)}\n\n"
        + "".join(f"  {line}\n" for line in rendered)
        + "}\n"
    )


@given(_random_spec_text())
@settings(max_examples=60, deadline=None)
def test_analyzer_never_crashes_and_is_deterministic(text):
    spec = parse_spec_text(text, path="fuzz.icsl")["fuzz"]
    first = analyze_spec(spec)
    second = analyze_spec(spec)
    render = lambda diags: "\n".join(d.render() for d in diags)
    assert render(first) == render(second)
    payload = report_json(first)
    assert payload == report_json(second)
    json.loads(payload)  # well-formed
    for diag in first:
        assert diag.code in DIAGNOSTIC_CODES


def test_report_json_is_byte_deterministic_on_builtins():
    first, _ = lint_spec_files(_builtin_paths(), cross=False)
    second, _ = lint_spec_files(_builtin_paths(), cross=False)
    assert report_json(first) == report_json(second)


def test_render_report_hides_notes_by_default():
    diags, _ = lint_spec_files([builtin_spec_path("for-loop")], cross=False)
    assert "ICSL009" not in render_report(diags)
    assert "ICSL009" in render_report(diags, notes=True)
    assert "note(s) hidden" in render_report(diags)
