"""Tests for atomic constraints and their candidate proposals."""

from repro.constraints import (
    Blocked,
    CFGEdge,
    DefDominatesBlock,
    Distinct,
    Dominates,
    EndsInCondBranch,
    EndsInUncondBranch,
    InBlock,
    IsConstantLike,
    Opcode,
    PhiIncomingFromBlock,
    PhiOfTwo,
    PostDominates,
    SESERegion,
    SolverContext,
)
from repro.frontend import compile_source

SOURCE = """
double a[32]; int n;
double f(void) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        if (a[i] > 0.5) {
            s = s + a[i];
        }
    }
    return s;
}
"""


def _ctx():
    module = compile_source(SOURCE)
    fn = module.get_function("f")
    ctx = SolverContext(fn, module)
    blocks = {b.name: b for b in fn.blocks}
    return ctx, blocks


def test_cfg_edge_check_and_proposal():
    ctx, blocks = _ctx()
    edge = CFGEdge("a", "b")
    header = next(b for n, b in blocks.items() if n.startswith("for.cond"))
    body = next(b for n, b in blocks.items() if n.startswith("for.body"))
    assert edge.check(ctx, {"a": header, "b": body})
    assert not edge.check(ctx, {"a": body, "b": body})
    proposals = list(edge.propose(ctx, {"a": header}, "b"))
    assert body in proposals
    back_proposals = list(edge.propose(ctx, {"b": header}, "a"))
    assert all(header in p.successors() for p in back_proposals)


def test_ends_in_uncond_branch():
    ctx, blocks = _ctx()
    constraint = EndsInUncondBranch("latch", "header")
    header = next(b for n, b in blocks.items() if n.startswith("for.cond"))
    latch = next(
        b for b in ctx.blocks()
        if header in b.successors()
        and b.terminator is not None
        and not b.terminator.is_conditional
    )
    assert constraint.check(ctx, {"latch": latch, "header": header})
    candidates = list(
        constraint.propose(ctx, {"header": header}, "latch")
    )
    assert latch in candidates


def test_ends_in_cond_branch_proposes_parts():
    ctx, blocks = _ctx()
    constraint = EndsInCondBranch("header", "test", "body", "exit")
    header = next(b for n, b in blocks.items() if n.startswith("for.cond"))
    (cond,) = constraint.propose(ctx, {"header": header}, "test")
    assert cond.opcode == "icmp"
    headers = list(constraint.propose(ctx, {}, "header"))
    assert header in headers


def test_dominance_constraints():
    ctx, blocks = _ctx()
    entry = ctx.function.entry
    header = next(b for n, b in blocks.items() if n.startswith("for.cond"))
    exit_block = next(
        b for n, b in blocks.items() if n.startswith("for.end")
    )
    assert Dominates("a", "b").check(ctx, {"a": entry, "b": header})
    assert not Dominates("a", "b").check(ctx, {"a": header, "b": entry})
    assert PostDominates("a", "b").check(
        ctx, {"a": exit_block, "b": header}
    )


def test_sese_region_constraint():
    ctx, blocks = _ctx()
    body = next(b for n, b in blocks.items() if n.startswith("for.body"))
    latch = next(b for n, b in blocks.items() if n.startswith("if.end"))
    assert SESERegion("b", "e").check(ctx, {"b": body, "e": latch})
    entry = ctx.function.entry
    assert not SESERegion("b", "e").check(ctx, {"b": body, "e": entry})


def test_blocked_constraint():
    ctx, blocks = _ctx()
    entry = ctx.function.entry
    header = next(b for n, b in blocks.items() if n.startswith("for.cond"))
    body = next(b for n, b in blocks.items() if n.startswith("for.body"))
    # Every path from entry to body passes through the header.
    assert Blocked("a", "via", "c").check(
        ctx, {"a": entry, "via": header, "c": body}
    )
    # But not through the body itself when going entry -> header.
    assert not Blocked("a", "via", "c").check(
        ctx, {"a": entry, "via": body, "c": header}
    )


def test_opcode_constraint_with_operands():
    ctx, blocks = _ctx()
    adds = ctx.instructions_with_opcode("add")
    assert adds
    add = adds[0]
    constraint = Opcode("x", "add", ("lhs", "rhs"), commutative=True)
    assert constraint.check(
        ctx, {"x": add, "lhs": add.lhs, "rhs": add.rhs}
    )
    # commutative: swapped operands also accepted
    assert constraint.check(
        ctx, {"x": add, "lhs": add.rhs, "rhs": add.lhs}
    )
    proposals = list(constraint.propose(ctx, {"x": add}, "lhs"))
    assert add.lhs in proposals and add.rhs in proposals


def test_opcode_partial_check_prunes_early():
    ctx, blocks = _ctx()
    load = ctx.instructions_with_opcode("load")[0]
    constraint = Opcode("x", "add", ("lhs", "rhs"))
    assert not constraint.partial_check(ctx, {"x": load})


def test_phi_of_two():
    ctx, blocks = _ctx()
    phis = ctx.instructions_with_opcode("phi")
    header_phi = next(p for p in phis if len(p.incoming) == 2)
    values = header_phi.incoming_values()
    constraint = PhiOfTwo("p", "a", "b")
    assert constraint.check(
        ctx, {"p": header_phi, "a": values[0], "b": values[1]}
    )
    assert constraint.check(
        ctx, {"p": header_phi, "a": values[1], "b": values[0]}
    )
    proposed = list(constraint.propose(ctx, {"p": header_phi}, "a"))
    assert set(map(id, proposed)) == set(map(id, values))


def test_phi_incoming_from_block():
    ctx, blocks = _ctx()
    phis = ctx.instructions_with_opcode("phi")
    header_phi = next(p for p in phis if len(p.incoming) == 2)
    value, pred = header_phi.incoming[0]
    constraint = PhiIncomingFromBlock("p", "v", "b")
    assert constraint.check(
        ctx, {"p": header_phi, "v": value, "b": pred}
    )
    wrong_pred = header_phi.incoming[1][1]
    assert not constraint.check(
        ctx, {"p": header_phi, "v": value, "b": wrong_pred}
    )


def test_in_block_and_proposals():
    ctx, blocks = _ctx()
    header = next(b for n, b in blocks.items() if n.startswith("for.cond"))
    phi = header.phis()[0]
    constraint = InBlock("x", "block")
    assert constraint.check(ctx, {"x": phi, "block": header})
    assert list(constraint.propose(ctx, {"x": phi}, "block")) == [header]
    assert phi in list(constraint.propose(ctx, {"block": header}, "x"))


def test_is_constant_like():
    ctx, blocks = _ctx()
    constraint = IsConstantLike("x")
    argumentless = ctx.function.args  # f has no args
    n_global = ctx.module.get_global("n")
    assert constraint.check(ctx, {"x": n_global})
    load = ctx.instructions_with_opcode("load")[0]
    assert not constraint.check(ctx, {"x": load})


def test_def_dominates_block():
    ctx, blocks = _ctx()
    header = next(b for n, b in blocks.items() if n.startswith("for.cond"))
    entry = ctx.function.entry
    hoisted_load = next(
        i for i in entry.instructions if i.opcode == "load"
    )
    constraint = DefDominatesBlock("x", "block")
    assert constraint.check(ctx, {"x": hoisted_load, "block": header})


def test_distinct_constraint():
    ctx, blocks = _ctx()
    a = ctx.instructions_with_opcode("load")[0]
    b = ctx.instructions_with_opcode("icmp")[0]
    constraint = Distinct("x", "y")
    assert constraint.check(ctx, {"x": a, "y": b})
    assert not constraint.check(ctx, {"x": a, "y": a})
    assert constraint.partial_check(ctx, {"x": a})
