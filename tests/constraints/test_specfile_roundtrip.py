"""ICSL parse→render→parse round-trips and error-message quality."""

import pytest

from repro.constraints import (
    SolverContext,
    SpecFileError,
    detect,
    load_spec_file,
    parse_spec_text,
    render_spec_text,
)
from repro.constraints.specfile import BUILTIN_SPEC_FILES, builtin_spec_path
from repro.frontend import compile_source

from test_differential import CORPUS, contexts_for, solution_set

# -- round trips --------------------------------------------------------------


@pytest.mark.parametrize("idiom", sorted(BUILTIN_SPEC_FILES))
def test_builtin_spec_render_roundtrip(idiom):
    """render is a parse inverse: the rendered text reparses to specs
    with identical solution sets, and rendering is a fixpoint."""
    original = load_spec_file(builtin_spec_path(idiom))
    rendered = render_spec_text(original)
    reparsed = parse_spec_text(rendered)
    assert set(reparsed) == set(original)
    assert render_spec_text(reparsed) == rendered  # fixpoint
    for name in original:
        a, b = original[name], reparsed[name]
        assert a.label_order == b.label_order
        for ctx in contexts_for(CORPUS["scalar-sum"]):
            assert solution_set(
                detect(ctx, a), a.label_order
            ) == solution_set(detect(ctx, b), a.label_order)


def test_synthetic_spec_roundtrip_with_groups_and_flow():
    text = """
    idiom fancy {
      order: header test body exit entry latch iterator next_iter x
      condbranch(header, test, body, exit)
      branch(latch, header)
      (opcode(x, add, _, _) & inblock(x, body)) | constant(x)
      opcode(test, icmp, iterator, x) commutative | phi2(test, iterator, x)
      phi2(iterator, next_iter, x)
      natural_loop(header, body, latch, entry, exit)
      flow(next_iter, header, sources=iterator, rejected=x, index=iterator, affine)
      distinct(header, body)
    }
    """
    specs = parse_spec_text(text)
    rendered = render_spec_text(specs)
    reparsed = parse_spec_text(rendered)
    assert render_spec_text(reparsed) == rendered
    assert reparsed["fancy"].label_order == specs["fancy"].label_order


def test_roundtrip_preserves_solutions_on_parsed_custom_idiom():
    text = """
    idiom load-of {
      order: x p
      opcode(x, load, p)
      opcode(p, gep, _, _)
    }
    """
    specs = parse_spec_text(text)
    reparsed = parse_spec_text(render_spec_text(specs))
    module = compile_source("double a[4]; double f(int i) { return a[i]; }")
    ctx = SolverContext(module.get_function("f"), module)
    order = specs["load-of"].label_order
    assert solution_set(detect(ctx, specs["load-of"]), order) == solution_set(
        detect(ctx, reparsed["load-of"]), order
    )


def test_extends_renders_flattened_but_equivalent():
    scalar = load_spec_file(builtin_spec_path("scalar-reduction"))
    rendered = render_spec_text(scalar)
    assert "extends" not in rendered  # flattened on render
    reparsed = parse_spec_text(rendered)
    for ctx in contexts_for(CORPUS["scalar-sum"]):
        order = scalar["scalar-reduction"].label_order
        assert solution_set(
            detect(ctx, scalar["scalar-reduction"]), order
        ) == solution_set(detect(ctx, reparsed["scalar-reduction"]), order)


def test_native_python_predicates_render():
    """Natives share the named predicate factories, so they render."""
    from repro.idioms import for_loop_spec

    rendered = render_spec_text({"for-loop": for_loop_spec()})
    assert "natural_loop(header, body, latch, entry, exit)" in rendered


def test_handwritten_computed_only_from_is_not_renderable():
    from repro.constraints import ComputedOnlyFrom, IdiomSpec

    constraint = ComputedOnlyFrom("x", "h", lambda ctx, a: (None, None))
    spec = IdiomSpec("opaque", ("x", "h"), constraint)
    with pytest.raises(SpecFileError, match="cannot be rendered"):
        render_spec_text({"opaque": spec})


# -- error-message quality ----------------------------------------------------


def _error_for(text):
    with pytest.raises(SpecFileError) as excinfo:
        parse_spec_text(text)
    return excinfo.value


def test_unknown_atom_reports_line_number():
    error = _error_for(
        "idiom x {\n  order: a\n  frobnicate(a)\n}"
    )
    assert "line 3" in str(error)
    assert "unknown atom" in str(error)
    assert error.line == 3


def test_bad_statement_reports_line_number():
    error = _error_for(
        "idiom x {\n  order: a\n  constant(a)\n  opcode(a,)(\n}"
    )
    assert error.line == 4
    assert "line 4" in str(error)


def test_unbalanced_parens_reports_line_number():
    error = _error_for(
        "idiom x {\n  order: a\n  (constant(a) | constant(a)\n}"
    )
    assert error.line == 3


def test_missing_order_reports_closing_line():
    error = _error_for("idiom x {\n  constant(a)\n}")
    assert "no order" in str(error)
    assert error.line == 3


def test_unterminated_block_reports_header_line():
    error = _error_for("\n\nidiom x {\n  order: a\n  constant(a)")
    assert "unterminated" in str(error)
    assert error.line == 3


def test_statement_outside_block_reports_line():
    error = _error_for("# comment\nconstant(a)")
    assert "outside idiom" in str(error)
    assert error.line == 2


def test_label_missing_from_order_reports_closing_line():
    error = _error_for(
        "idiom x {\n  order: a\n  edge(a, b)\n}"
    )
    assert "missing from order" in str(error)
    assert error.line == 4


def test_unknown_extends_base_reports_line():
    error = _error_for("idiom x extends nope {\n  order: a\n  constant(a)\n}")
    assert "unknown idiom 'nope'" in str(error)
    assert error.line == 1


def test_flow_keyword_typo_is_reported():
    error = _error_for(
        "idiom x {\n  order: a h\n  flow(a, h, source=a)\n}"
    )
    assert "unknown flow keyword" in str(error)
    assert error.line == 3


def test_wrong_predicate_arity_is_reported():
    error = _error_for(
        "idiom x {\n  order: a b\n  load_before_store(a)\n}"
    )
    assert "argument" in str(error)
    assert error.line == 3


def test_extends_builtin_resolves_automatically():
    specs = parse_spec_text(
        """
        idiom tiny-loop extends for-loop {
          order: header test body exit entry latch iterator next_iter iter_begin iter_step iter_end
          distinct(body, latch)
        }
        """
    )
    spec = specs["tiny-loop"]
    assert len(spec.label_order) == 11
    for ctx in contexts_for(CORPUS["scalar-sum"]):
        # body == latch in this single-block loop: the extra conjunct
        # must now reject the match the plain for-loop spec finds.
        assert detect(ctx, spec) == []
