"""Tests for the incremental solver core.

The indexed ``partial_check`` path (re-check only conjuncts mentioning
the newest binding) must accept and reject **exactly** the same partial
assignments as the naive full-tree walk — same solutions in the same
order, same ``assignments_tried``, same ``partial_rejections`` — while
strictly reducing ``constraint_evals``.  Plus property tests that
:func:`~repro.constraints.solver.suggest_order` (and label reordering
in general) never changes the solution set.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import (
    SolverContext,
    SolverStats,
    compile_spec,
    detect,
    suggest_order,
)
from repro.frontend import compile_source
from repro.idioms import (
    BUILTIN_IDIOMS,
    for_loop_spec,
    histogram_spec,
    scalar_reduction_spec,
)

from test_differential import CORPUS, NATIVE_SPECS, contexts_for, solution_set


@pytest.mark.parametrize("idiom", sorted(NATIVE_SPECS))
@pytest.mark.parametrize("program", sorted(CORPUS))
def test_incremental_equals_naive_tree_walk(idiom, program):
    spec = NATIVE_SPECS[idiom]()
    for ctx in contexts_for(CORPUS[program]):
        inc_stats, naive_stats = SolverStats(), SolverStats()
        incremental = detect(ctx, spec, stats=inc_stats, incremental=True)
        naive = detect(ctx, spec, stats=naive_stats, incremental=False)
        # Identical enumeration: same solutions in the same order...
        assert incremental == naive
        # ...from identical accept/reject decisions at every depth.
        assert inc_stats.assignments_tried == naive_stats.assignments_tried
        assert inc_stats.partial_rejections == naive_stats.partial_rejections
        assert inc_stats.solutions == naive_stats.solutions
        assert inc_stats.fallbacks_to_universe == (
            naive_stats.fallbacks_to_universe
        )
        # The index only pays for conjuncts the newest binding affects.
        assert inc_stats.constraint_evals <= naive_stats.constraint_evals
        if naive_stats.assignments_tried:
            assert inc_stats.constraint_evals < naive_stats.constraint_evals


def test_compiled_schedule_covers_every_conjunct():
    """Each conjunct is checked at every depth that binds one of its
    labels — and at least once (so solutions satisfy all conjuncts)."""
    for factory in NATIVE_SPECS.values():
        spec = factory()
        compiled = compile_spec(spec)
        scheduled = set()
        for k, indices in enumerate(compiled.schedule):
            label = spec.label_order[k]
            for i in indices:
                assert label in compiled.labelsets[i]
            scheduled.update(indices)
        assert scheduled == set(range(len(compiled.conjuncts)))


def test_proposal_memoization_hits_on_repeated_lookups():
    module = compile_source(
        """
        double a[64]; int n;
        double f(void) {
            double s = 0.0; double t = 0.0;
            for (int i = 0; i < n; i++) s = s + a[i];
            for (int j = 0; j < n; j++) t = t + a[j+1];
            return s + t;
        }
        """
    )
    ctx = SolverContext(module.get_function("f"), module)
    stats = SolverStats()
    solutions = detect(ctx, scalar_reduction_spec(), stats=stats)
    assert len(solutions) == 2
    assert stats.proposal_cache_hits > 0


@pytest.mark.parametrize("idiom", sorted(NATIVE_SPECS))
def test_suggest_order_is_a_permutation(idiom):
    spec = NATIVE_SPECS[idiom]()
    order = suggest_order(spec)
    assert sorted(order) == sorted(spec.label_order)


@pytest.mark.parametrize("idiom", sorted(NATIVE_SPECS))
@pytest.mark.parametrize("program", sorted(CORPUS))
def test_suggest_order_preserves_solution_set(idiom, program):
    spec = NATIVE_SPECS[idiom]()
    reordered = spec.reordered(suggest_order(spec))
    for ctx in contexts_for(CORPUS[program]):
        assert solution_set(
            detect(ctx, spec), spec.label_order
        ) == solution_set(detect(ctx, reordered), spec.label_order)


@pytest.mark.parametrize("idiom", sorted(NATIVE_SPECS))
def test_cost_aware_suggest_order_preserves_solution_set(idiom):
    """Feeding observed SolverStats back into the ordering (the
    cost-aware flag) may permute labels but never changes solutions."""
    spec = NATIVE_SPECS[idiom]()
    for program in ("scalar-sum", "histogram"):
        for ctx in contexts_for(CORPUS[program]):
            feedback = SolverStats()
            baseline = detect(ctx, spec, stats=feedback)
            order = suggest_order(spec, feedback=feedback)
            assert sorted(order) == sorted(spec.label_order)
            assert solution_set(
                detect(ctx, spec.reordered(order)), spec.label_order
            ) == solution_set(baseline, spec.label_order)


def test_cost_aware_suggest_order_reacts_to_observed_cost():
    """Among measured continuations at the same bound prefix, the one
    with the smaller mean candidate list wins — the runtime feedback,
    not just the static score, decides."""
    spec = for_loop_spec()
    static = suggest_order(spec)
    feedback = SolverStats()
    feedback.candidates_per_prefix = {
        (static[0], frozenset()): (1, 10 ** 6),
        (static[1], frozenset()): (1, 3),
    }
    cost_aware = suggest_order(spec, feedback=feedback)
    assert sorted(cost_aware) == sorted(spec.label_order)
    assert cost_aware != static
    assert cost_aware[0] == static[1]


def test_cost_aware_suggest_order_replays_the_observed_order():
    """Feedback conditioned on the bound prefix never trades measured
    territory for unmeasured territory: stats from a run of some order
    reproduce that order, so feedback is never worse than the run that
    produced it."""
    spec = for_loop_spec()
    for observed_order in (
        spec.label_order,
        tuple(reversed(spec.label_order)),
    ):
        reordered = spec.reordered(observed_order)
        for ctx in contexts_for(CORPUS["scalar-sum"]):
            feedback = SolverStats()
            detect(ctx, reordered, stats=feedback)
            assert suggest_order(spec, feedback=feedback) == observed_order


def test_solver_stats_merge_accumulates_counters():
    spec = for_loop_spec()
    ctx = contexts_for(CORPUS["scalar-sum"])[0]
    a, b = SolverStats(), SolverStats()
    detect(ctx, spec, stats=a)
    detect(ctx, spec.reordered(suggest_order(spec)), stats=b)
    merged = SolverStats().merge(a).merge(b)
    assert merged.constraint_evals == a.constraint_evals + b.constraint_evals
    assert merged.assignments_tried == (
        a.assignments_tried + b.assignments_tried
    )
    for key, (visits, total) in a.candidates_per_prefix.items():
        b_visits, b_total = b.candidates_per_prefix.get(key, (0, 0))
        assert merged.candidates_per_prefix[key] == (
            visits + b_visits, total + b_total
        )


def test_suggest_order_without_feedback_is_static():
    """The flag off (no feedback) reproduces the static heuristic."""
    for factory in NATIVE_SPECS.values():
        spec = factory()
        assert suggest_order(spec) == suggest_order(
            spec, feedback=SolverStats()
        )


def test_suggest_order_starts_proposable():
    """The heuristic must not open with a universe-fallback label."""
    spec = for_loop_spec()
    ctx = contexts_for(CORPUS["scalar-sum"])[0]
    order = suggest_order(spec)
    stats = SolverStats()
    detect(ctx, spec.reordered(order), stats=stats)
    # Binding the first suggested label never falls back to enumerating
    # the whole universe: some conjunct proposes it from nothing.
    first = order[0]
    assert stats.candidates_per_label.get(first, 0) < len(ctx.universe)


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_any_label_order_preserves_solution_set(data):
    """§3.3: enumeration order affects effort, never the solution set.

    Random permutations subsume ``suggest_order`` — the solver must be
    order-independent for the heuristic to be free to pick anything.
    """
    spec = for_loop_spec()
    order = tuple(
        data.draw(st.permutations(list(spec.label_order)), label="order")
    )
    module = compile_source(CORPUS["scalar-sum"])
    ctx = SolverContext(module.get_function("f"), module)
    baseline = solution_set(detect(ctx, spec), spec.label_order)
    permuted = solution_set(
        detect(ctx, spec.reordered(order)), spec.label_order
    )
    assert permuted == baseline


def test_builtin_coverage_matches_registry():
    assert set(NATIVE_SPECS) == set(BUILTIN_IDIOMS)
    assert {spec.name for spec in
            (factory() for factory in NATIVE_SPECS.values())} == set(
        BUILTIN_IDIOMS
    )
