"""Tests for the backtracking solver, including differential testing
against the exponential brute-force enumeration of §3.2."""

from repro.constraints import (
    CFGEdge,
    ConstraintAnd,
    ConstraintOr,
    EndsInUncondBranch,
    IdiomSpec,
    Opcode,
    SolverContext,
    SolverStats,
    detect,
    detect_brute_force,
)
from repro.frontend import compile_source
from repro.idioms import for_loop_spec


def _tiny_ctx():
    module = compile_source(
        """
        int f(int a, int b) {
            int c = a + b;
            int d = c + a;
            return d;
        }
        """
    )
    return SolverContext(module.get_function("f"), module)


def test_solver_matches_brute_force_on_adds():
    ctx = _tiny_ctx()
    spec = IdiomSpec(
        "chained-add",
        ("x", "y"),
        ConstraintAnd(
            Opcode("x", "add", ("y", None)),
            Opcode("y", "add"),
        ),
    )
    fast = detect(ctx, spec)
    slow = detect_brute_force(ctx, spec)
    as_set = lambda sols: {tuple(id(s[l]) for l in spec.label_order)
                           for s in sols}
    assert as_set(fast) == as_set(slow)
    assert len(fast) == 1  # d = c + a with c = a + b


def test_solver_matches_brute_force_with_disjunction():
    ctx = _tiny_ctx()
    spec = IdiomSpec(
        "add-or-ret",
        ("x",),
        ConstraintOr(Opcode("x", "add"), Opcode("x", "ret")),
    )
    fast = detect(ctx, spec)
    slow = detect_brute_force(ctx, spec)
    assert len(fast) == len(slow) == 3  # two adds + one ret


def test_solver_stats_reflect_pruning():
    module = compile_source(
        """
        double a[16]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + a[i];
            return s;
        }
        """
    )
    ctx = SolverContext(module.get_function("f"), module)
    spec = for_loop_spec()
    stats = SolverStats()
    solutions = detect(ctx, spec, stats=stats)
    assert len(solutions) == 1
    assert stats.solutions == 1
    # Guided search must try far fewer assignments than the naive
    # |universe|^12 space.
    assert stats.assignments_tried < len(ctx.universe) ** 2


def test_bad_label_order_explodes_candidates():
    """§3.3: the enumeration order drives solver effort."""
    module = compile_source(
        """
        double a[16]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + a[i];
            return s;
        }
        """
    )
    ctx = SolverContext(module.get_function("f"), module)
    spec = for_loop_spec()
    good = SolverStats()
    detect(ctx, spec, stats=good)
    # Move the weakly-constrained value labels first: candidates must
    # now be drawn from much larger sets.
    bad_order = tuple(reversed(spec.label_order))
    bad_spec = spec.reordered(bad_order)
    bad = SolverStats()
    solutions = detect(ctx, bad_spec, stats=bad)
    assert len(solutions) == 1  # same result...
    assert bad.assignments_tried > good.assignments_tried  # ...more work


def test_limit_stops_enumeration():
    ctx = _tiny_ctx()
    spec = IdiomSpec("any-add", ("x",), Opcode("x", "add"))
    solutions = detect(ctx, spec, limit=1)
    assert len(solutions) == 1


def test_or_eliminates_failed_disjuncts():
    ctx = _tiny_ctx()
    ret = ctx.instructions_with_opcode("ret")[0]
    disjunction = ConstraintOr(Opcode("x", "add"), Opcode("x", "ret"))
    assert disjunction.partial_check(ctx, {"x": ret})
    load_free = ConstraintOr(Opcode("x", "load"), Opcode("x", "store"))
    assert not load_free.partial_check(ctx, {"x": ret})
