"""Differential-testing harness for the constraint solver.

Three independent equivalences, each parametrized across all six
shipped idioms (core + §8 extensions) and a small C-source corpus:

* ``detect`` ≡ ``detect_brute_force`` — the guided backtracking search
  finds exactly the §3.2 enumeration's solution set.  Brute force is
  ``|values(F)|^|I|``, so this runs on *derived mini-specs* (2–3 labels
  drawn from each idiom's constraint vocabulary); the full 11–21 label
  specs are infeasible to enumerate by construction, which is the
  paper's point.

* file-spec ≡ native-spec — every shipped ``.icsl`` port produces the
  identical solution set to its native Python counterpart, on every
  corpus program, for the full specs.

* shared-cache ≡ per-call-cache — running every spec against one
  context's :class:`~repro.constraints.SharedSolverCache` (memoized
  proposals shared across specs, solved for-loop prefixes replayed)
  returns the identical solution list, in the identical order, as the
  PR-1 engine's per-``detect``-call state.

The helpers (:func:`solution_set`, :func:`assert_same_solutions`,
:func:`contexts_for`) are reusable for future idioms: add a spec pair
or corpus entry and the whole matrix re-runs.
"""

import pytest

from repro.constraints import (
    ConstraintAnd,
    IdiomSpec,
    Opcode,
    PhiOfTwo,
    SharedSolverCache,
    SolverContext,
    SolverStats,
    detect,
    detect_brute_force,
    load_spec_file,
)
from repro.constraints.predicates import load_before_store, same_join
from repro.constraints.specfile import builtin_spec_path
from repro.frontend import compile_source
from repro.idioms import (
    BUILTIN_IDIOMS,
    IdiomRegistry,
    argminmax_spec,
    dot_product_spec,
    for_loop_spec,
    histogram_spec,
    nested_array_reduction_spec,
    scalar_reduction_spec,
)

# -- the corpus ---------------------------------------------------------------

CORPUS = {
    "scalar-sum": """
        double a[16]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = 0.5 * s + a[i];
            return s;
        }
        """,
    "nested-sum": """
        double a[64]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++)
                for (int j = 0; j < 8; j++)
                    s = s + a[i*8 + j];
            return s;
        }
        """,
    "histogram": """
        int hist[8]; int keys[32]; int n;
        void f(void) {
            for (int i = 0; i < n; i++) hist[keys[i]]++;
        }
        """,
    "not-a-reduction": """
        int f(int n) {
            int i = 0;
            int lim = n;
            while (i < lim) { lim = lim - 1; i = i + 1; }
            return i;
        }
        """,
    "iterator-carried": """
        double a[16]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + a[i] * i;
            return s;
        }
        """,
    "dot-product": """
        double xs[16]; double ys[16]; int n;
        double dot(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + xs[i] * ys[i];
            return s;
        }
        double norm(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + xs[i] * xs[i];
            return s;
        }
        """,
    "argminmax": """
        double a[16]; int n;
        int argmin_of(void) {
            double best = 1000000.0;
            int pos = 0;
            for (int i = 0; i < n; i++) {
                if (a[i] < best) { best = a[i]; pos = i; }
            }
            return pos;
        }
        """,
    "nested-rms": """
        double rms[5]; double rhs[80]; int n;
        void norms(void) {
            for (int i = 0; i < n; i++)
                for (int m = 0; m < 5; m++) {
                    double add = rhs[i*5 + m];
                    rms[m] = rms[m] + add * add;
                }
        }
        """,
}

NATIVE_SPECS = {
    "for-loop": for_loop_spec,
    "scalar-reduction": scalar_reduction_spec,
    "histogram": histogram_spec,
    "dot-product": dot_product_spec,
    "argminmax": argminmax_spec,
    "nested-array-reduction": nested_array_reduction_spec,
}


# -- the reusable harness -----------------------------------------------------


def contexts_for(source: str):
    """Solver contexts for every defined function of a C source."""
    module = compile_source(source)
    return [
        SolverContext(function, module)
        for function in module.defined_functions()
    ]


def solution_set(solutions, order):
    """Canonicalize solutions: a set of per-label value-identity tuples."""
    return {tuple(id(s[label]) for label in order) for s in solutions}


def assert_same_solutions(ctx, spec_a, spec_b):
    """Both specs must produce the identical solution set in ``ctx``.

    The canonical key uses ``spec_a``'s label order, so the two specs
    must share a label set (their orders may differ).
    """
    assert set(spec_a.label_order) == set(spec_b.label_order)
    a = solution_set(detect(ctx, spec_a), spec_a.label_order)
    b = solution_set(detect(ctx, spec_b), spec_a.label_order)
    assert a == b


# -- detect ≡ brute force on derived mini-specs -------------------------------

#: 2–3 label sub-idioms, one derived from each shipped idiom's
#: vocabulary, small enough for |universe|^|I| enumeration.
MINI_SPECS = {
    "for-loop": lambda: IdiomSpec(
        "forloop-mini",
        ("iterator", "next_iter", "iter_begin"),
        ConstraintAnd(
            PhiOfTwo("iterator", "next_iter", "iter_begin"),
            Opcode("next_iter", "add", ("iterator", None), commutative=True),
        ),
    ),
    "scalar-reduction": lambda: IdiomSpec(
        "scalar-mini",
        ("acc", "acc_update", "acc_init"),
        ConstraintAnd(
            PhiOfTwo("acc", "acc_update", "acc_init"),
            Opcode("acc_update", "fadd", (None, None), commutative=True),
        ),
    ),
    "histogram": lambda: IdiomSpec(
        "histogram-mini",
        ("hist_store", "update", "gep_st"),
        ConstraintAnd(
            Opcode("hist_store", "store", ("update", "gep_st")),
            Opcode("gep_st", "gep", (None, None)),
        ),
    ),
    "dot-product": lambda: IdiomSpec(
        "dot-product-mini",
        ("product", "load_a", "load_b"),
        ConstraintAnd(
            Opcode("product", "fmul", ("load_a", "load_b"),
                   commutative=True),
            Opcode("load_a", "load", (None,)),
            Opcode("load_b", "load", (None,)),
        ),
    ),
    "argminmax": lambda: IdiomSpec(
        "argminmax-mini",
        ("best_update", "pos_update"),
        ConstraintAnd(
            Opcode("best_update", "phi", ()),
            Opcode("pos_update", "phi", ()),
            same_join("best_update", "pos_update"),
        ),
    ),
    "nested-array-reduction": lambda: IdiomSpec(
        "nested-mini",
        ("arr_load", "arr_store"),
        ConstraintAnd(
            Opcode("arr_store", "store", (None, None)),
            Opcode("arr_load", "load", (None,)),
            load_before_store("arr_load", "arr_store"),
        ),
    ),
}


@pytest.mark.parametrize("idiom", sorted(MINI_SPECS))
@pytest.mark.parametrize("program", sorted(CORPUS))
def test_detect_matches_brute_force(idiom, program):
    spec = MINI_SPECS[idiom]()
    for ctx in contexts_for(CORPUS[program]):
        fast = solution_set(detect(ctx, spec), spec.label_order)
        slow = solution_set(detect_brute_force(ctx, spec), spec.label_order)
        assert fast == slow


# -- file-spec ≡ native-spec on the full idioms -------------------------------


@pytest.mark.parametrize("idiom", sorted(NATIVE_SPECS))
@pytest.mark.parametrize("program", sorted(CORPUS))
def test_file_spec_matches_native_spec(idiom, program):
    native = NATIVE_SPECS[idiom]()
    external = load_spec_file(builtin_spec_path(idiom))[idiom]
    assert external.label_order == native.label_order
    for ctx in contexts_for(CORPUS[program]):
        assert_same_solutions(ctx, native, external)


def test_all_builtin_idioms_covered():
    """The differential matrix covers every built-in idiom."""
    assert set(NATIVE_SPECS) == set(BUILTIN_IDIOMS)
    assert set(MINI_SPECS) == set(BUILTIN_IDIOMS)


# -- shared-cache ≡ per-call-cache on the full idioms -------------------------


@pytest.mark.parametrize("program", sorted(CORPUS))
def test_shared_cache_matches_per_call_cache(program):
    """One context's shared cache (memoized proposals + replayed
    for-loop prefixes, accumulated across all six specs) returns the
    identical solution list — order included — as PR-1's fresh
    per-``detect``-call state."""
    registry = IdiomRegistry()
    for ctx in contexts_for(CORPUS[program]):
        for name in BUILTIN_IDIOMS:
            spec = registry.spec(name)
            shared = detect(ctx, spec)  # ctx.solver_cache, persistent
            private = detect(ctx, spec, cache=SharedSolverCache())
            assert shared == private, (program, name)


def test_limit_bounded_search_never_computes_the_base():
    """``limit`` must stay cheap: a bounded search on a cold cache
    falls back to plain DFS rather than fully enumerating the base
    spec first; on a warm cache it replays the existing list."""
    registry = IdiomRegistry()
    spec = registry.spec("scalar-reduction")
    for ctx in contexts_for(CORPUS["scalar-sum"]):
        cold_stats = SolverStats()
        first = detect(ctx, spec, stats=cold_stats, limit=1,
                       cache=SharedSolverCache())
        assert len(first) == 1
        assert cold_stats.prefix_reuses == 0
        unbounded = detect(ctx, spec)  # warms ctx.solver_cache
        warm_stats = SolverStats()
        bounded = detect(ctx, spec, stats=warm_stats, limit=1)
        assert warm_stats.prefix_reuses == 1
        assert bounded == unbounded[:1] == first


def test_shared_cache_saves_constraint_evals():
    """Running the extends-family specs on one context must replay the
    solved for-loop prefix: fewer total conjunct evaluations than the
    per-call engine, for the same solutions."""
    registry = IdiomRegistry()
    specs = [registry.spec(n) for n in ("scalar-reduction", "histogram")]
    for ctx in contexts_for(CORPUS["histogram"]):
        shared_stats, private_stats = SolverStats(), SolverStats()
        shared = [
            detect(ctx, spec, stats=shared_stats) for spec in specs
        ]
        private = [
            detect(ctx, spec, stats=private_stats,
                   cache=SharedSolverCache())
            for spec in specs
        ]
        assert shared == private
        assert shared_stats.prefix_reuses == len(specs)
        assert shared_stats.constraint_evals < private_stats.constraint_evals


def test_corpus_finds_expected_reductions():
    """Sanity: the corpus exercises both hit and miss paths."""
    scalar = scalar_reduction_spec()
    histogram = histogram_spec()
    expected = {
        "scalar-sum": (1, 0),
        # only the inner accumulator: the outer update is the inner
        # loop's result, a loop-carried value the flow slice rejects
        "nested-sum": (1, 0),
        "histogram": (0, 1),
        "not-a-reduction": (0, 0),
        "iterator-carried": (0, 0),  # §3.1.1 cond. 4: iterator in value
        "dot-product": (2, 0),  # both dot and norm are scalar sums too
        "argminmax": (0, 0),  # the guard reads the accumulator
        "nested-rms": (0, 0),  # §6.1: mid-nest stores stay out
    }
    assert set(expected) == set(CORPUS)
    for name, (scalars, histograms) in expected.items():
        found_scalars = found_histograms = 0
        for ctx in contexts_for(CORPUS[name]):
            found_scalars += len(
                {id(s["acc"]) for s in detect(ctx, scalar)}
            )
            found_histograms += len(
                {id(s["hist_store"]) for s in detect(ctx, histogram)}
            )
        assert (found_scalars, found_histograms) == (scalars, histograms), name
