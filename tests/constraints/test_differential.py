"""Differential-testing harness for the constraint solver.

Two independent equivalences, each parametrized across all three
shipped idioms and a small C-source corpus:

* ``detect`` ≡ ``detect_brute_force`` — the guided backtracking search
  finds exactly the §3.2 enumeration's solution set.  Brute force is
  ``|values(F)|^|I|``, so this runs on *derived mini-specs* (2–3 labels
  drawn from each idiom's constraint vocabulary); the full 11/14/18
  label specs are infeasible to enumerate by construction, which is the
  paper's point.

* file-spec ≡ native-spec — every shipped ``.icsl`` port produces the
  identical solution set to its native Python counterpart, on every
  corpus program, for the full specs.

The helpers (:func:`solution_set`, :func:`assert_same_solutions`,
:func:`contexts_for`) are reusable for future idioms: add a spec pair
or corpus entry and the whole matrix re-runs.
"""

import pytest

from repro.constraints import (
    ConstraintAnd,
    IdiomSpec,
    Opcode,
    PhiOfTwo,
    SolverContext,
    detect,
    detect_brute_force,
    load_spec_file,
)
from repro.constraints.specfile import builtin_spec_path
from repro.frontend import compile_source
from repro.idioms import (
    BUILTIN_IDIOMS,
    for_loop_spec,
    histogram_spec,
    scalar_reduction_spec,
)

# -- the corpus ---------------------------------------------------------------

CORPUS = {
    "scalar-sum": """
        double a[16]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = 0.5 * s + a[i];
            return s;
        }
        """,
    "nested-sum": """
        double a[64]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++)
                for (int j = 0; j < 8; j++)
                    s = s + a[i*8 + j];
            return s;
        }
        """,
    "histogram": """
        int hist[8]; int keys[32]; int n;
        void f(void) {
            for (int i = 0; i < n; i++) hist[keys[i]]++;
        }
        """,
    "not-a-reduction": """
        int f(int n) {
            int i = 0;
            int lim = n;
            while (i < lim) { lim = lim - 1; i = i + 1; }
            return i;
        }
        """,
    "iterator-carried": """
        double a[16]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + a[i] * i;
            return s;
        }
        """,
}

NATIVE_SPECS = {
    "for-loop": for_loop_spec,
    "scalar-reduction": scalar_reduction_spec,
    "histogram": histogram_spec,
}


# -- the reusable harness -----------------------------------------------------


def contexts_for(source: str):
    """Solver contexts for every defined function of a C source."""
    module = compile_source(source)
    return [
        SolverContext(function, module)
        for function in module.defined_functions()
    ]


def solution_set(solutions, order):
    """Canonicalize solutions: a set of per-label value-identity tuples."""
    return {tuple(id(s[label]) for label in order) for s in solutions}


def assert_same_solutions(ctx, spec_a, spec_b):
    """Both specs must produce the identical solution set in ``ctx``.

    The canonical key uses ``spec_a``'s label order, so the two specs
    must share a label set (their orders may differ).
    """
    assert set(spec_a.label_order) == set(spec_b.label_order)
    a = solution_set(detect(ctx, spec_a), spec_a.label_order)
    b = solution_set(detect(ctx, spec_b), spec_a.label_order)
    assert a == b


# -- detect ≡ brute force on derived mini-specs -------------------------------

#: 2–3 label sub-idioms, one derived from each shipped idiom's
#: vocabulary, small enough for |universe|^|I| enumeration.
MINI_SPECS = {
    "for-loop": lambda: IdiomSpec(
        "forloop-mini",
        ("iterator", "next_iter", "iter_begin"),
        ConstraintAnd(
            PhiOfTwo("iterator", "next_iter", "iter_begin"),
            Opcode("next_iter", "add", ("iterator", None), commutative=True),
        ),
    ),
    "scalar-reduction": lambda: IdiomSpec(
        "scalar-mini",
        ("acc", "acc_update", "acc_init"),
        ConstraintAnd(
            PhiOfTwo("acc", "acc_update", "acc_init"),
            Opcode("acc_update", "fadd", (None, None), commutative=True),
        ),
    ),
    "histogram": lambda: IdiomSpec(
        "histogram-mini",
        ("hist_store", "update", "gep_st"),
        ConstraintAnd(
            Opcode("hist_store", "store", ("update", "gep_st")),
            Opcode("gep_st", "gep", (None, None)),
        ),
    ),
}


@pytest.mark.parametrize("idiom", sorted(MINI_SPECS))
@pytest.mark.parametrize("program", sorted(CORPUS))
def test_detect_matches_brute_force(idiom, program):
    spec = MINI_SPECS[idiom]()
    for ctx in contexts_for(CORPUS[program]):
        fast = solution_set(detect(ctx, spec), spec.label_order)
        slow = solution_set(detect_brute_force(ctx, spec), spec.label_order)
        assert fast == slow


# -- file-spec ≡ native-spec on the full idioms -------------------------------


@pytest.mark.parametrize("idiom", sorted(NATIVE_SPECS))
@pytest.mark.parametrize("program", sorted(CORPUS))
def test_file_spec_matches_native_spec(idiom, program):
    native = NATIVE_SPECS[idiom]()
    external = load_spec_file(builtin_spec_path(idiom))[idiom]
    assert external.label_order == native.label_order
    for ctx in contexts_for(CORPUS[program]):
        assert_same_solutions(ctx, native, external)


def test_all_builtin_idioms_covered():
    """The differential matrix covers every built-in idiom."""
    assert set(NATIVE_SPECS) == set(BUILTIN_IDIOMS)
    assert set(MINI_SPECS) == set(BUILTIN_IDIOMS)


def test_corpus_finds_expected_reductions():
    """Sanity: the corpus exercises both hit and miss paths."""
    scalar = scalar_reduction_spec()
    histogram = histogram_spec()
    expected = {
        "scalar-sum": (1, 0),
        # only the inner accumulator: the outer update is the inner
        # loop's result, a loop-carried value the flow slice rejects
        "nested-sum": (1, 0),
        "histogram": (0, 1),
        "not-a-reduction": (0, 0),
        "iterator-carried": (0, 0),  # §3.1.1 cond. 4: iterator in value
    }
    for name, (scalars, histograms) in expected.items():
        found_scalars = found_histograms = 0
        for ctx in contexts_for(CORPUS[name]):
            found_scalars += len(
                {id(s["acc"]) for s in detect(ctx, scalar)}
            )
            found_histograms += len(
                {id(s["hist_store"]) for s in detect(ctx, histogram)}
            )
        assert (found_scalars, found_histograms) == (scalars, histograms), name
