"""Tests for external specification files (§3.4 future work)."""

import os

import pytest

from repro.constraints import SolverContext, detect
from repro.constraints.specfile import (
    SpecFileError,
    load_spec_file,
    parse_spec_text,
)
from repro.frontend import compile_source
from repro.idioms import for_loop_spec

SPEC_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "src", "repro", "constraints",
    "specs", "forloop.icsl",
)


def test_shipped_forloop_spec_loads():
    specs = load_spec_file(SPEC_PATH)
    assert set(specs) == {"for-loop"}
    spec = specs["for-loop"]
    assert spec.label_order[0] == "header"
    assert len(spec.label_order) == 11


@pytest.mark.parametrize(
    "source,expected_loops",
    [
        (
            """
            double a[16]; int n;
            double f(void) {
                double s = 0.0;
                for (int i = 0; i < n; i++) s = 0.5 * s + a[i];
                return s;
            }
            """,
            1,
        ),
        (
            """
            double a[64]; int n;
            double f(void) {
                double s = 0.0;
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < 8; j++)
                        s = 0.5 * s + a[i*8 + j];
                return s;
            }
            """,
            2,
        ),
        (
            """
            int f(int n) {
                int i = 0;
                int lim = n;
                while (i < lim) { lim = lim - 1; i = i + 1; }
                return i;
            }
            """,
            0,
        ),
    ],
)
def test_file_spec_matches_native_spec(source, expected_loops):
    """The external spec must agree with the native Fig. 5 spec."""
    module = compile_source(source)
    fn = module.get_function("f")
    ctx = SolverContext(fn, module)
    native = for_loop_spec()
    external = load_spec_file(SPEC_PATH)["for-loop"]

    native_headers = {
        id(s["header"]) for s in detect(ctx, native)
    }
    external_headers = {
        id(s["header"]) for s in detect(ctx, external)
    }
    assert native_headers == external_headers
    assert len(external_headers) == expected_loops


def test_disjunction_syntax():
    specs = parse_spec_text(
        """
        idiom any-op {
          order: x
          opcode(x, add) | opcode(x, fadd)
        }
        """
    )
    module = compile_source(
        "double f(double x, int i) { return x + 1.0 + (double)(i + 2); }"
    )
    ctx = SolverContext(module.get_function("f"), module)
    solutions = detect(ctx, specs["any-op"])
    assert len(solutions) == 3  # two fadds + one integer add


def test_opcode_wildcard_operand():
    specs = parse_spec_text(
        """
        idiom load-of {
          order: x p
          opcode(x, load, p)
          opcode(p, gep, _, _)
        }
        """
    )
    module = compile_source(
        "double a[4]; double f(int i) { return a[i]; }"
    )
    ctx = SolverContext(module.get_function("f"), module)
    assert len(detect(ctx, specs["load-of"])) == 1


def test_error_on_unknown_atom():
    with pytest.raises(SpecFileError, match="unknown atom"):
        parse_spec_text("idiom x {\norder: a\nfrobnicate(a)\n}")


def test_error_on_missing_order():
    with pytest.raises(SpecFileError, match="no order"):
        parse_spec_text("idiom x {\nconstant(a)\n}")


def test_error_on_unterminated_block():
    with pytest.raises(SpecFileError, match="unterminated"):
        parse_spec_text("idiom x {\norder: a\nconstant(a)")


def test_error_on_statement_outside_block():
    with pytest.raises(SpecFileError, match="outside idiom"):
        parse_spec_text("constant(a)")


def test_comments_and_blank_lines_ignored():
    specs = parse_spec_text(
        """
        # a comment
        idiom trivial {   ; trailing comment
          order: x
          constant(x)     # another
        }
        """
    )
    assert "trivial" in specs
