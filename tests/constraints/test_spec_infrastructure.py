"""Tests for IdiomSpec plumbing and label bookkeeping."""

import pytest

from repro.constraints import (
    ConstraintAnd,
    ConstraintOr,
    IdiomSpec,
    IsConstantLike,
    Opcode,
    constraint_labels,
)


def test_constraint_labels_collects_nested():
    tree = ConstraintAnd(
        Opcode("x", "add", ("a", "b")),
        ConstraintOr(IsConstantLike("c"), Opcode("c", "load", ("p",))),
    )
    assert constraint_labels(tree) == {"x", "a", "b", "c", "p"}


def test_spec_rejects_missing_labels_in_order():
    constraint = Opcode("x", "add", ("a", "b"))
    with pytest.raises(ValueError, match="missing from order"):
        IdiomSpec("bad", ("x", "a"), constraint)


def test_spec_reordered_keeps_constraint():
    constraint = Opcode("x", "add", ("a", "b"))
    spec = IdiomSpec("ok", ("x", "a", "b"), constraint)
    flipped = spec.reordered(("b", "a", "x"))
    assert flipped.constraint is constraint
    assert flipped.label_order == ("b", "a", "x")
    with pytest.raises(ValueError):
        spec.reordered(("x", "a"))


def test_and_flattens_nested_ands():
    inner = ConstraintAnd(Opcode("x", "add"), Opcode("y", "load", ("p",)))
    outer = ConstraintAnd(inner, IsConstantLike("z"))
    assert len(outer.children) == 3


def test_or_flattens_nested_ors():
    inner = ConstraintOr(Opcode("x", "add"), Opcode("x", "sub"))
    outer = ConstraintOr(inner, Opcode("x", "mul"))
    assert len(outer.children) == 3


def test_operator_sugar():
    a = Opcode("x", "add")
    b = Opcode("x", "sub")
    both = a & b
    either = a | b
    assert isinstance(both, ConstraintAnd)
    assert isinstance(either, ConstraintOr)
