"""Tests for the mini-C lexer."""

import pytest

from repro.frontend import LexerError, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


def test_keywords_and_identifiers():
    assert kinds("int x double for_2") == [
        ("keyword", "int"),
        ("ident", "x"),
        ("keyword", "double"),
        ("ident", "for_2"),
    ]


def test_numbers():
    assert kinds("0 42 3.5 1e3 2.5e-2 .5") == [
        ("int", "0"),
        ("int", "42"),
        ("float", "3.5"),
        ("float", "1e3"),
        ("float", "2.5e-2"),
        ("float", ".5"),
    ]


def test_operators_maximal_munch():
    assert kinds("a<=b") == [("ident", "a"), ("op", "<="), ("ident", "b")]
    assert kinds("i++ + 1") == [
        ("ident", "i"), ("op", "++"), ("op", "+"), ("int", "1"),
    ]
    assert kinds("x<<=2")[1] == ("op", "<<=")
    assert kinds("a&&b||!c")[1] == ("op", "&&")


def test_line_comments_skipped():
    assert kinds("a // comment here\n b") == [
        ("ident", "a"), ("ident", "b"),
    ]


def test_block_comments_skipped():
    assert kinds("a /* x \n y */ b") == [("ident", "a"), ("ident", "b")]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexerError, match="unterminated"):
        tokenize("a /* oops")


def test_unexpected_character_raises():
    with pytest.raises(LexerError, match="unexpected character"):
        tokenize("int $x;")


def test_positions_tracked():
    tokens = tokenize("int x;\ndouble y;")
    double_token = [t for t in tokens if t.text == "double"][0]
    assert double_token.line == 2
    assert double_token.column == 1


def test_eof_token_terminates_stream():
    tokens = tokenize("x")
    assert tokens[-1].kind == "eof"


def test_helper_predicates():
    tokens = tokenize("for (")
    assert tokens[0].is_keyword("for")
    assert tokens[1].is_op("(")
    assert not tokens[1].is_op(")")
