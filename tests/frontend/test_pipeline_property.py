"""Property test: the whole compile pipeline preserves semantics.

Random straight-line/branchy/loopy mini-C programs are generated from a
small grammar; the unoptimized alloca form and the fully optimized SSA
form (mem2reg + DCE + trivial-phi + merge + LICM + CSE) must compute
identical results through the interpreter.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import lower_source
from repro.frontend.lowering import lower_source as lower_again
from repro.ir import verify_module
from repro.passes.cse import local_cse
from repro.passes.licm import hoist_invariant_loads
from repro.passes.mem2reg import promote_allocas
from repro.passes.simplify import (
    dead_code_elimination,
    merge_straightline_blocks,
    remove_trivial_phis,
    remove_unreachable_blocks,
)
from repro.runtime import Interpreter, Memory

_VARS = ("x", "y", "z")


@st.composite
def expressions(draw, depth=0):
    if depth > 2:
        return draw(st.sampled_from(_VARS))
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return str(draw(st.integers(-3, 9)))
    if kind == 1:
        return draw(st.sampled_from(_VARS))
    if kind == 2:
        op = draw(st.sampled_from(["+", "-", "*"]))
        lhs = draw(expressions(depth=depth + 1))
        rhs = draw(expressions(depth=depth + 1))
        return f"({lhs} {op} {rhs})"
    if kind == 3:
        cond_op = draw(st.sampled_from(["<", ">", "=="]))
        lhs = draw(expressions(depth=depth + 1))
        rhs = draw(expressions(depth=depth + 1))
        a = draw(expressions(depth=depth + 1))
        b = draw(expressions(depth=depth + 1))
        return f"(({lhs} {cond_op} {rhs}) ? {a} : {b})"
    inner = draw(expressions(depth=depth + 1))
    return f"(- {inner})"  # space avoids lexing "--" as decrement


@st.composite
def statements(draw, depth=0):
    kind = draw(st.integers(0, 3 if depth < 2 else 1))
    target = draw(st.sampled_from(_VARS))
    if kind == 0:
        return f"{target} = {draw(expressions())};"
    if kind == 1:
        op = draw(st.sampled_from(["+=", "-=", "*="]))
        return f"{target} {op} {draw(expressions())};"
    if kind == 2:
        cond = draw(expressions())
        body = draw(statements(depth=depth + 1))
        orelse = draw(statements(depth=depth + 1))
        return f"if ({cond} > 0) {{ {body} }} else {{ {orelse} }}"
    body = draw(statements(depth=depth + 1))
    bound = draw(st.integers(1, 5))
    return f"for (int i{depth} = 0; i{depth} < {bound}; i{depth}++) {{ {body} }}"


@st.composite
def programs(draw):
    body = " ".join(draw(st.lists(statements(), min_size=1, max_size=5)))
    result = draw(expressions())
    return f"""
    int f(int x, int y) {{
        int z = 0;
        {body}
        return {result};
    }}
    """


def _run(module, args):
    interp = Interpreter(module, Memory(module), max_instructions=500_000)
    return interp.call(module.get_function("f"), list(args))


@given(source=programs(), x=st.integers(-5, 5), y=st.integers(-5, 5))
@settings(max_examples=60, deadline=None)
def test_optimized_pipeline_preserves_semantics(source, x, y):
    baseline = lower_source(source)
    for fn in baseline.defined_functions():
        remove_unreachable_blocks(fn)

    optimized = lower_again(source)
    for fn in optimized.defined_functions():
        remove_unreachable_blocks(fn)
        promote_allocas(fn)
        dead_code_elimination(fn)
        remove_trivial_phis(fn)
        merge_straightline_blocks(fn)
        hoist_invariant_loads(fn)
        local_cse(fn)
    verify_module(optimized)

    assert _run(baseline, (x, y)) == _run(optimized, (x, y))
