"""Tests for semantic analysis helpers."""

import pytest

from repro.frontend.ast_nodes import Binary, FloatLit, IntLit, Unary, Var
from repro.frontend.sema import (
    INTRINSICS,
    ConstEvaluator,
    SemaError,
    intrinsic_signature,
)


def test_intrinsic_table_purity():
    assert INTRINSICS["sqrt"].pure
    assert INTRINSICS["fmax"].pure
    assert not INTRINSICS["rand"].pure
    assert not INTRINSICS["print_double"].pure


def test_intrinsic_signature_lookup():
    sig = intrinsic_signature("fmin")
    assert sig is not None
    assert sig.pure
    assert [t.base for t in sig.param_types] == ["double", "double"]
    assert intrinsic_signature("unknown_fn") is None


def test_const_eval_literals():
    evaluator = ConstEvaluator()
    assert evaluator.try_eval(IntLit(4)) == 4
    assert evaluator.try_eval(FloatLit(2.5)) == 2.5


def test_const_eval_named_constants():
    evaluator = ConstEvaluator()
    evaluator.define("N", 16)
    assert evaluator.try_eval(Var("N")) == 16
    assert evaluator.try_eval(Var("M")) is None


def test_const_eval_arithmetic():
    evaluator = ConstEvaluator()
    evaluator.define("N", 10)
    expr = Binary("+", Binary("*", Var("N"), IntLit(2)), IntLit(4))
    assert evaluator.try_eval(expr) == 24


def test_const_eval_c_division():
    evaluator = ConstEvaluator()
    assert evaluator.try_eval(Binary("/", IntLit(-7), IntLit(2))) == -3
    assert evaluator.try_eval(Binary("%", IntLit(-7), IntLit(2))) == -1
    assert evaluator.try_eval(Binary("/", IntLit(1), IntLit(0))) is None


def test_const_eval_unary():
    evaluator = ConstEvaluator()
    assert evaluator.try_eval(Unary("-", IntLit(3))) == -3
    assert evaluator.try_eval(Unary("!", IntLit(0))) == 1
    assert evaluator.try_eval(Unary("~", IntLit(0))) == -1


def test_const_eval_comparisons():
    evaluator = ConstEvaluator()
    assert evaluator.try_eval(Binary("<", IntLit(1), IntLit(2))) == 1
    assert evaluator.try_eval(Binary("==", IntLit(1), IntLit(2))) == 0


def test_eval_int_requires_constant():
    evaluator = ConstEvaluator()
    with pytest.raises(SemaError, match="constant integer"):
        evaluator.eval_int(Var("unknown"), "array dim")
    with pytest.raises(SemaError):
        evaluator.eval_int(FloatLit(2.5), "array dim")
