"""Tests for the mini-C parser."""

import pytest

from repro.frontend import ParseError, parse
from repro.frontend.ast_nodes import (
    Assign,
    Binary,
    Block,
    Call,
    CastExpr,
    For,
    If,
    IncDec,
    Index,
    IntLit,
    Return,
    Ternary,
    Unary,
    Var,
    While,
)


def _single_function(source):
    program = parse(source)
    assert len(program.functions) == 1
    return program.functions[0]


def test_function_signature():
    fn = _single_function("double f(int n, double *a) { return 0.0; }")
    assert fn.name == "f"
    assert fn.return_type.base == "double"
    assert fn.params[0].type.base == "int"
    assert fn.params[1].type.pointer == 1


def test_array_parameter_decays_to_pointer():
    fn = _single_function("void f(double a[], int b[16]) { }")
    assert fn.params[0].type.pointer == 1
    assert fn.params[1].type.pointer == 1


def test_global_array_dims():
    program = parse("const int N = 8; double a[N][2*N];")
    decl = program.globals[1]
    assert decl.name == "a"
    assert len(decl.type.dims) == 2


def test_for_loop_structure():
    fn = _single_function(
        "void f(void) { for (int i = 0; i < 4; i++) { } }"
    )
    loop = fn.body.statements[0]
    assert isinstance(loop, For)
    assert loop.init is not None
    assert isinstance(loop.cond, Binary)
    assert isinstance(loop.step, IncDec)


def test_precedence_mul_over_add():
    fn = _single_function("int f(void) { return 1 + 2 * 3; }")
    expr = fn.body.statements[0].value
    assert isinstance(expr, Binary) and expr.op == "+"
    assert isinstance(expr.rhs, Binary) and expr.rhs.op == "*"


def test_precedence_comparison_over_logic():
    fn = _single_function("int f(int a, int b) { return a < 1 && b > 2; }")
    expr = fn.body.statements[0].value
    assert expr.op == "&&"
    assert expr.lhs.op == "<" and expr.rhs.op == ">"


def test_ternary_parses_right_associative():
    fn = _single_function(
        "int f(int a) { return a ? 1 : a ? 2 : 3; }"
    )
    expr = fn.body.statements[0].value
    assert isinstance(expr, Ternary)
    assert isinstance(expr.if_false, Ternary)


def test_multidim_index():
    fn = _single_function("double a[4][4]; double f(void) { return a[1][2]; }".replace("double a[4][4]; ", ""))
    # parse separately with the global present
    program = parse("double a[4][4]; double f(void) { return a[1][2]; }")
    expr = program.functions[0].body.statements[0].value
    assert isinstance(expr, Index)
    assert len(expr.indices) == 2


def test_cast_expression():
    fn = _single_function("int f(double x) { return (int) x; }")
    expr = fn.body.statements[0].value
    assert isinstance(expr, CastExpr)
    assert expr.target.base == "int"


def test_call_with_arguments():
    fn = _single_function("double f(double x) { return fmax(x, 1.0); }")
    expr = fn.body.statements[0].value
    assert isinstance(expr, Call)
    assert expr.name == "fmax"
    assert len(expr.args) == 2


def test_compound_assignment():
    fn = _single_function("void f(void) { int x = 0; x += 3; }")
    stmt = fn.body.statements[1]
    assert isinstance(stmt, Assign)
    assert stmt.op == "+="


def test_assignment_requires_lvalue():
    with pytest.raises(ParseError, match="lvalue"):
        parse("void f(void) { 1 = 2; }")


def test_if_else_chains():
    fn = _single_function(
        "int f(int x) { if (x > 0) return 1; else if (x < 0) return 2; "
        "else return 3; }"
    )
    stmt = fn.body.statements[0]
    assert isinstance(stmt, If)
    assert isinstance(stmt.orelse, If)


def test_while_break_continue():
    fn = _single_function(
        "void f(int n) { while (n > 0) { if (n == 3) break; n--; } }"
    )
    loop = fn.body.statements[0]
    assert isinstance(loop, While)


def test_unary_operators():
    fn = _single_function("int f(int x) { return -x + !x + ~x; }")
    expr = fn.body.statements[0].value
    assert isinstance(expr.lhs.lhs, Unary)


def test_missing_semicolon_reports_position():
    with pytest.raises(ParseError):
        parse("int f(void) { return 1 }")


def test_empty_statement_allowed():
    fn = _single_function("void f(void) { ; }")
    assert isinstance(fn.body.statements[0], Block)


def test_declaration_only_function():
    program = parse("double sin2(double x);")
    assert program.functions[0].body is None
