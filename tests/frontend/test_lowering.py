"""Tests for AST→IR lowering and the full compile pipeline."""

import pytest

from repro.frontend import LoweringError, compile_source, lower_source
from repro.frontend.sema import SemaError
from repro.ir import (
    AllocaInst,
    GEPInst,
    LoadInst,
    PhiInst,
    StoreInst,
    print_function,
    verify_module,
)


def test_locals_become_entry_allocas_before_mem2reg():
    module = lower_source(
        "double f(void) { double x = 1.0; double y = x + 2.0; return y; }"
    )
    fn = module.get_function("f")
    allocas = [i for i in fn.instructions() if isinstance(i, AllocaInst)]
    assert len(allocas) == 2
    assert all(a.parent is fn.entry for a in allocas)


def test_mem2reg_removes_scalar_allocas():
    module = compile_source(
        "double f(void) { double x = 1.0; double y = x + 2.0; return y; }"
    )
    fn = module.get_function("f")
    assert not any(isinstance(i, AllocaInst) for i in fn.instructions())


def test_canonical_for_loop_shape():
    module = compile_source(
        """
        double a[16]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + a[i];
            return s;
        }
        """
    )
    fn = module.get_function("f")
    header = next(b for b in fn.blocks if b.name.startswith("for.cond"))
    phis = header.phis()
    assert len(phis) == 2  # iterator and accumulator
    terminator = header.terminator
    assert terminator.is_conditional
    latch = next(
        b for b in fn.blocks
        if header in b.successors() and b is not fn.entry
    )
    assert not latch.terminator.is_conditional


def test_multidim_array_flattened_to_single_gep():
    module = compile_source(
        """
        double a[4][8];
        double f(int i, int j) { return a[i][j]; }
        """
    )
    fn = module.get_function("f")
    geps = [i for i in fn.instructions() if isinstance(i, GEPInst)]
    assert len(geps) == 1  # one flat gep: a + (i*8 + j)


def test_wrong_index_count_rejected():
    with pytest.raises(LoweringError, match="indices"):
        compile_source("double a[4][8]; double f(int i) { return a[i]; }")


def test_pointer_parameter_indexing():
    module = compile_source(
        "double f(double *p, int i) { return p[i]; }"
    )
    fn = module.get_function("f")
    loads = [i for i in fn.instructions() if isinstance(i, LoadInst)]
    assert len(loads) == 1


def test_int_to_double_promotion():
    module = compile_source("double f(int x) { return x + 0.5; }")
    fn = module.get_function("f")
    assert any(i.opcode == "sitofp" for i in fn.instructions())


def test_double_to_int_cast():
    module = compile_source("int f(double x) { return (int) x; }")
    fn = module.get_function("f")
    assert any(i.opcode == "fptosi" for i in fn.instructions())


def test_constant_folding_of_literal_bounds():
    module = compile_source(
        """
        double a[64];
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < 64 - 1; i++) s = s + a[i];
            return s;
        }
        """
    )
    fn = module.get_function("f")
    text = print_function(fn)
    assert "icmp slt i64 %i, 63" in text


def test_short_circuit_and_lowering():
    module = compile_source(
        """
        int f(int a, int b) {
            if (a > 0 && b > 0) return 1;
            return 0;
        }
        """
    )
    fn = module.get_function("f")
    # two comparisons across two blocks, not a bitwise and
    assert sum(1 for i in fn.instructions() if i.opcode == "icmp") >= 2


def test_ternary_lowers_to_select():
    module = compile_source("double f(double a, double b) { return a > b ? a : b; }")
    fn = module.get_function("f")
    assert any(i.opcode == "select" for i in fn.instructions())


def test_while_loop_and_break():
    module = compile_source(
        """
        int f(int n) {
            int i = 0;
            while (1) {
                if (i >= n) break;
                i++;
            }
            return i;
        }
        """
    )
    verify_module(module)


def test_continue_statement():
    module = compile_source(
        """
        double a[16]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) {
                if (a[i] < 0.0) continue;
                s = s + a[i];
            }
            return s;
        }
        """
    )
    verify_module(module)


def test_unknown_variable_reported():
    with pytest.raises(LoweringError, match="unknown variable"):
        compile_source("int f(void) { return nope; }")


def test_unknown_function_reported():
    with pytest.raises(LoweringError, match="unknown function"):
        compile_source("int f(void) { return mystery(1); }")


def test_modulo_on_doubles_rejected():
    with pytest.raises(LoweringError):
        compile_source("double f(double x) { return x % 2.0; }")


def test_const_global_requires_constant_init():
    with pytest.raises(SemaError):
        compile_source("int n; const int M = n; double f(void) { return M; }")


def test_const_global_inlined_as_literal():
    module = compile_source(
        "const int N = 12; int f(void) { return N * 2; }"
    )
    fn = module.get_function("f")
    text = print_function(fn)
    assert "ret i64 24" in text


def test_missing_return_value_synthesised():
    module = compile_source("double f(void) { }")
    fn = module.get_function("f")
    assert "ret double 0.0" in print_function(fn)


def test_void_call_as_statement():
    module = compile_source(
        "void g(void) { } void f(void) { g(); }"
    )
    verify_module(module)


def test_scoped_shadowing():
    module = compile_source(
        """
        int f(void) {
            int x = 1;
            {
                int x = 2;
                x = x + 1;
            }
            return x;
        }
        """
    )
    fn = module.get_function("f")
    assert "ret i64 1" in print_function(fn)


def test_array_local_not_promoted():
    module = compile_source(
        """
        double f(void) {
            double buf[8];
            buf[0] = 3.0;
            return buf[0];
        }
        """
    )
    fn = module.get_function("f")
    assert any(isinstance(i, AllocaInst) for i in fn.instructions())
    assert any(isinstance(i, StoreInst) for i in fn.instructions())
