"""Tests for the structural verifier."""

import pytest

from repro.ir import (
    DOUBLE,
    INT64,
    BinaryInst,
    FunctionType,
    IRBuilder,
    Module,
    VerificationError,
    const_float,
    const_int,
    verify_function,
)


def _skeleton():
    module = Module("m")
    fn = module.add_function("f", FunctionType(INT64, ()), [])
    return module, fn


def test_missing_terminator_detected():
    module, fn = _skeleton()
    fn.add_block("entry")
    with pytest.raises(VerificationError, match="no terminator"):
        verify_function(fn)


def test_valid_function_passes():
    module, fn = _skeleton()
    entry = fn.add_block("entry")
    IRBuilder(entry).ret(const_int(0))
    verify_function(fn)


def test_phi_with_wrong_predecessors_detected():
    module, fn = _skeleton()
    entry = fn.add_block("entry")
    other = fn.add_block("other")
    b = IRBuilder(entry)
    b.br(other)
    b.position_at_end(other)
    phi = b.phi(INT64, "p")
    phi.add_incoming(const_int(1), other)  # wrong: pred is entry
    b.ret(phi)
    with pytest.raises(VerificationError, match="incoming blocks"):
        verify_function(fn)


def test_phi_after_non_phi_detected():
    from repro.ir import PhiInst

    module, fn = _skeleton()
    entry = fn.add_block("entry")
    other = fn.add_block("other")
    IRBuilder(entry).br(other)
    b = IRBuilder(other)
    add = b.add(const_int(1), const_int(2))
    phi = PhiInst(INT64, "p")
    phi.add_incoming(const_int(1), entry)
    other.insert(1, phi)  # after the add: malformed on purpose
    IRBuilder(other).ret(add)
    with pytest.raises(VerificationError, match="phi after non-phi"):
        verify_function(fn)


def test_use_before_definition_detected():
    module, fn = _skeleton()
    entry = fn.add_block("entry")
    b = IRBuilder(entry)
    first = BinaryInst("add", const_int(1), const_int(2), "first")
    second = BinaryInst("add", const_int(1), const_int(2), "second")
    entry.append(second)
    entry.append(first)
    second.set_operand(0, first)  # second uses first but precedes it
    b.position_at_end(entry)
    b.ret(second)
    with pytest.raises(VerificationError, match="used before definition"):
        verify_function(fn)


def test_foreign_operand_detected():
    module, fn = _skeleton()
    other_fn = module.add_function("g", FunctionType(INT64, ()), [])
    other_entry = other_fn.add_block("entry")
    foreign = IRBuilder(other_entry).add(const_int(1), const_int(1))
    IRBuilder(other_entry).ret(foreign)

    entry = fn.add_block("entry")
    b = IRBuilder(entry)
    local = b.add(const_int(0), const_int(0))
    local.set_operand(0, foreign)
    b.ret(local)
    with pytest.raises(VerificationError, match="foreign"):
        verify_function(fn)


def test_definition_must_dominate_use():
    module, fn = _skeleton()
    entry = fn.add_block("entry")
    left = fn.add_block("left")
    right = fn.add_block("right")
    join = fn.add_block("join")
    b = IRBuilder(entry)
    cond = b.icmp("eq", const_int(0), const_int(0), "c")
    b.cond_br(cond, left, right)
    b.position_at_end(left)
    defined_in_left = b.add(const_int(1), const_int(2), "d")
    b.br(join)
    b.position_at_end(right)
    b.br(join)
    b.position_at_end(join)
    use = b.add(defined_in_left, const_int(1), "u")
    b.ret(use)
    with pytest.raises(VerificationError, match="does not dominate"):
        verify_function(fn)
