"""Round-trip tests: print → parse → print must be a fixed point.

Run over handwritten snippets and, property-style, over every function
of the 40-program corpus — exercising every instruction kind the
pipeline can produce.
"""

import pytest

from repro.frontend import compile_source
from repro.ir import print_module, verify_module
from repro.ir.parser import IRParseError, parse_module, parse_type
from repro.ir.types import DOUBLE, INT64, PointerType
from repro.workloads import all_programs


def _roundtrip(module):
    text = print_module(module)
    reparsed = parse_module(text)
    verify_module(reparsed)
    assert print_module(reparsed) == text
    return reparsed


def test_parse_type_spellings():
    assert parse_type("i64") == INT64
    assert parse_type("double") == DOUBLE
    assert parse_type("double*") == PointerType(DOUBLE)
    assert parse_type("i1*").pointee.width == 1
    with pytest.raises(IRParseError):
        parse_type("quux")


def test_roundtrip_simple_sum():
    module = compile_source(
        """
        double a[16]; int n;
        double f(void) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + a[i];
            return s;
        }
        """
    )
    _roundtrip(module)


def test_roundtrip_covers_all_instruction_kinds():
    module = compile_source(
        """
        double scale = 1.5;
        double a[16]; int keys[16]; int hist[8]; int n;
        double mixed(int m, double *p) {
            double buf[4];
            buf[0] = p[0];
            double s = scale;
            for (int i = 0; i < n; i++) {
                if (a[i] > 0.5 && i < m) {
                    hist[keys[i] % 8] = hist[keys[i] % 8] + 1;
                    s = fmax(s, a[i]);
                } else {
                    s = s + (double) (i > 2 ? 1 : 0);
                }
            }
            return s + buf[0];
        }
        """
    )
    reparsed = _roundtrip(module)
    opcodes = {
        i.opcode for f in reparsed.defined_functions()
        for i in f.instructions()
    }
    for expected in ("phi", "br", "icmp", "fcmp", "load", "store", "gep",
                     "call", "select", "add", "fadd", "srem", "sitofp",
                     "alloca", "ret"):
        assert expected in opcodes, expected


def test_roundtrip_preserves_global_initializers():
    module = compile_source(
        "double scale = 2.5; int f(void) { return 0; }"
    )
    reparsed = _roundtrip(module)
    assert reparsed.get_global("scale").initializer == [2.5]


def test_roundtrip_preserves_purity_flags():
    module = compile_source(
        "double f(double x) { return sqrt(x) + rand(); }"
    )
    reparsed = _roundtrip(module)
    assert reparsed.get_function("sqrt").pure
    assert not reparsed.get_function("rand").pure


def test_parse_error_on_garbage():
    with pytest.raises(IRParseError):
        parse_module("this is not ir")


def test_parse_error_on_unknown_block():
    text = """define void @f() {
entry:
  br label %nowhere
}"""
    with pytest.raises(IRParseError, match="unknown block"):
        parse_module(text)


@pytest.mark.parametrize(
    "prog",
    all_programs(),
    ids=[f"{p.suite}-{p.name}" for p in all_programs()],
)
def test_roundtrip_whole_corpus(prog):
    """The printer/parser pair is a bijection over realistic IR."""
    module = prog.compile()
    _roundtrip(module)


def test_reparsed_module_detects_same_reductions():
    """Semantic round trip: detection results survive serialization."""
    from repro.idioms import find_reductions

    prog = next(p for p in all_programs() if p.name == "EP")
    module = prog.compile()
    reparsed = parse_module(print_module(module))
    original = find_reductions(module).counts()
    recovered = find_reductions(reparsed).counts()
    assert original == recovered == (2, 1)
