"""Tests for the IR type system."""

import pytest

from repro.ir import (
    DOUBLE,
    FLOAT,
    INT1,
    INT32,
    INT64,
    LABEL,
    VOID,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
)


def test_int_type_structural_equality():
    assert IntType(32) == IntType(32)
    assert IntType(32) != IntType(64)
    assert hash(IntType(8)) == hash(IntType(8))


def test_int_type_rejects_nonpositive_width():
    with pytest.raises(ValueError):
        IntType(0)
    with pytest.raises(ValueError):
        IntType(-4)


def test_float_type_widths():
    assert FloatType(32) == FLOAT
    assert FloatType(64) == DOUBLE
    with pytest.raises(ValueError):
        FloatType(16)


def test_pointer_type_structure():
    assert PointerType(DOUBLE) == PointerType(DOUBLE)
    assert PointerType(DOUBLE) != PointerType(INT64)
    assert PointerType(PointerType(INT64)).pointee == PointerType(INT64)


def test_type_predicates():
    assert INT64.is_integer() and not INT64.is_float()
    assert DOUBLE.is_float() and not DOUBLE.is_pointer()
    assert PointerType(INT64).is_pointer()
    assert VOID.is_void()
    assert not LABEL.is_void()


def test_type_strings():
    assert str(INT1) == "i1"
    assert str(INT32) == "i32"
    assert str(DOUBLE) == "double"
    assert str(FLOAT) == "float"
    assert str(PointerType(DOUBLE)) == "double*"
    assert str(VOID) == "void"
    assert str(LABEL) == "label"


def test_function_type():
    ftype = FunctionType(DOUBLE, (INT64, PointerType(DOUBLE)))
    assert ftype == FunctionType(DOUBLE, (INT64, PointerType(DOUBLE)))
    assert ftype != FunctionType(VOID, (INT64, PointerType(DOUBLE)))
    assert str(ftype) == "double (i64, double*)"


def test_types_usable_as_dict_keys():
    table = {INT64: "a", DOUBLE: "b", PointerType(DOUBLE): "c"}
    assert table[IntType(64)] == "a"
    assert table[FloatType(64)] == "b"
    assert table[PointerType(FloatType(64))] == "c"
