"""Tests for values, constants and def-use tracking."""

import pytest

from repro.ir import (
    DOUBLE,
    INT1,
    INT64,
    BinaryInst,
    ConstantFloat,
    ConstantInt,
    IntType,
    UndefValue,
    const_bool,
    const_float,
    const_int,
)


def test_constant_int_wraps_to_width():
    assert ConstantInt(IntType(8), 255).value == -1
    assert ConstantInt(IntType(8), 127).value == 127
    assert ConstantInt(IntType(8), 128).value == -128
    assert ConstantInt(IntType(64), 2**63).value == -(2**63)


def test_const_helpers():
    assert const_int(42).type == INT64
    assert const_float(1.5).type == DOUBLE
    assert const_bool(True).type == INT1
    assert const_bool(True).value == 1
    assert const_bool(False).value == 0


def test_undef_is_constant():
    undef = UndefValue(DOUBLE)
    assert undef.is_constant()
    assert undef.short_name() == "undef"


def test_use_lists_track_operands():
    a = const_int(1)
    b = const_int(2)
    add = BinaryInst("add", a, b)
    assert [u.user for u in a.uses] == [add]
    assert [u.index for u in a.uses] == [0]
    assert [u.index for u in b.uses] == [1]


def test_set_operand_updates_uses():
    a = const_int(1)
    b = const_int(2)
    c = const_int(3)
    add = BinaryInst("add", a, b)
    add.set_operand(0, c)
    assert not a.uses
    assert [u.user for u in c.uses] == [add]
    assert add.lhs is c


def test_replace_all_uses_with():
    a = const_int(1)
    b = const_int(2)
    c = const_int(9)
    add1 = BinaryInst("add", a, b)
    add2 = BinaryInst("add", a, a)
    a.replace_all_uses_with(c)
    assert add1.lhs is c
    assert add2.lhs is c and add2.rhs is c
    assert not a.uses
    assert len(c.uses) == 3


def test_replace_all_uses_with_self_is_noop():
    a = const_int(1)
    add = BinaryInst("add", a, a)
    a.replace_all_uses_with(a)
    assert add.lhs is a


def test_drop_all_references():
    a = const_int(1)
    b = const_int(2)
    add = BinaryInst("add", a, b)
    add.drop_all_references()
    assert not a.uses and not b.uses
    assert add.operands == ()


def test_remove_missing_use_raises():
    a = const_int(1)
    b = const_int(2)
    add = BinaryInst("add", a, b)
    with pytest.raises(ValueError):
        a.remove_use(add, 5)
