"""Tests for instruction construction and invariants."""

import pytest

from repro.ir import (
    DOUBLE,
    INT64,
    BasicBlock,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    Function,
    FunctionType,
    GEPInst,
    GlobalVariable,
    ICmpInst,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    const_bool,
    const_float,
    const_int,
)


def test_binary_rejects_unknown_opcode():
    with pytest.raises(ValueError):
        BinaryInst("frob", const_int(1), const_int(2))


def test_binary_rejects_type_mismatch():
    with pytest.raises(TypeError):
        BinaryInst("add", const_int(1), const_float(2.0))


def test_binary_result_type_follows_operands():
    add = BinaryInst("add", const_int(1), const_int(2))
    fmul = BinaryInst("fmul", const_float(1.0), const_float(2.0))
    assert add.type == INT64
    assert fmul.type == DOUBLE


def test_commutativity_classification():
    assert BinaryInst("add", const_int(1), const_int(2)).is_commutative()
    assert BinaryInst("fmul", const_float(1.0),
                      const_float(2.0)).is_commutative()
    assert not BinaryInst("sub", const_int(1), const_int(2)).is_commutative()
    assert not BinaryInst("fdiv", const_float(1.0),
                          const_float(2.0)).is_commutative()


def test_icmp_produces_i1():
    cmp = ICmpInst("slt", const_int(1), const_int(2))
    assert str(cmp.type) == "i1"
    with pytest.raises(ValueError):
        ICmpInst("ult", const_int(1), const_int(2))


def test_fcmp_predicates():
    cmp = FCmpInst("ole", const_float(1.0), const_float(2.0))
    assert cmp.predicate == "ole"
    with pytest.raises(ValueError):
        FCmpInst("ueq", const_float(1.0), const_float(2.0))


def test_load_store_type_checking():
    array = GlobalVariable("a", DOUBLE, 10)
    load = LoadInst(array)
    assert load.type == DOUBLE
    store = StoreInst(const_float(1.0), array)
    assert store.value.value == 1.0
    with pytest.raises(TypeError):
        StoreInst(const_int(1), array)
    with pytest.raises(TypeError):
        LoadInst(const_int(1))


def test_gep_types():
    array = GlobalVariable("a", DOUBLE, 10)
    gep = GEPInst(array, const_int(3))
    assert gep.type == array.type
    with pytest.raises(TypeError):
        GEPInst(const_int(1), const_int(0))
    with pytest.raises(TypeError):
        GEPInst(array, const_float(1.0))


def test_phi_incoming_api():
    block_a = BasicBlock("a")
    block_b = BasicBlock("b")
    phi = PhiInst(INT64)
    phi.add_incoming(const_int(1), block_a)
    phi.add_incoming(const_int(2), block_b)
    assert phi.incoming_values()[0].value == 1
    assert phi.incoming_for_block(block_b).value == 2
    with pytest.raises(KeyError):
        phi.incoming_for_block(BasicBlock("c"))
    with pytest.raises(TypeError):
        phi.add_incoming(const_float(1.0), block_a)


def test_branch_forms():
    target = BasicBlock("t")
    other = BasicBlock("e")
    uncond = BranchInst(target)
    assert not uncond.is_conditional
    assert uncond.targets() == [target]
    cond = BranchInst(const_bool(True), target, other)
    assert cond.is_conditional
    assert cond.targets() == [target, other]
    with pytest.raises(ValueError):
        uncond.condition
    with pytest.raises(TypeError):
        BranchInst(const_int(1), target, other)


def test_return_forms():
    assert ReturnInst().return_value is None
    assert ReturnInst(const_int(3)).return_value.value == 3


def test_call_checks_signature():
    callee = Function("sqrt", FunctionType(DOUBLE, (DOUBLE,)), ["x"],
                      pure=True)
    call = CallInst(callee, [const_float(4.0)])
    assert call.callee is callee
    assert call.type == DOUBLE
    with pytest.raises(TypeError):
        CallInst(callee, [])
    with pytest.raises(TypeError):
        CallInst(callee, [const_int(4)])


def test_select_checks_types():
    sel = SelectInst(const_bool(True), const_float(1.0), const_float(2.0))
    assert sel.type == DOUBLE
    with pytest.raises(TypeError):
        SelectInst(const_int(1), const_float(1.0), const_float(2.0))
    with pytest.raises(TypeError):
        SelectInst(const_bool(True), const_float(1.0), const_int(2))


def test_cast_opcodes():
    cast = CastInst("sitofp", const_int(1), DOUBLE)
    assert cast.type == DOUBLE
    with pytest.raises(ValueError):
        CastInst("bitcastify", const_int(1), DOUBLE)


def test_terminator_classification():
    assert BranchInst(BasicBlock("x")).is_terminator()
    assert ReturnInst().is_terminator()
    assert not BinaryInst("add", const_int(1), const_int(1)).is_terminator()
