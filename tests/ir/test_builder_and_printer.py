"""Tests for IRBuilder, the printer and function/module structure."""

import pytest

from repro.ir import (
    DOUBLE,
    INT64,
    FunctionType,
    IRBuilder,
    Module,
    const_float,
    const_int,
    print_function,
    print_module,
    verify_function,
)


def _sum_function():
    module = Module("m")
    array = module.add_global("a", DOUBLE, 16)
    fn = module.add_function("total", FunctionType(DOUBLE, (INT64,)), ["n"])
    entry = fn.add_block("entry")
    header = fn.add_block("header")
    body = fn.add_block("body")
    exit_ = fn.add_block("exit")
    b = IRBuilder(entry)
    b.br(header)
    b.position_at_end(header)
    iv = b.phi(INT64, "i")
    acc = b.phi(DOUBLE, "s")
    cond = b.icmp("slt", iv, fn.args[0], "cmp")
    b.cond_br(cond, body, exit_)
    b.position_at_end(body)
    ptr = b.gep(array, iv, "ptr")
    val = b.load(ptr, "v")
    nxt = b.fadd(acc, val, "ns")
    niv = b.add(iv, const_int(1), "ni")
    b.br(header)
    iv.add_incoming(const_int(0), entry)
    iv.add_incoming(niv, body)
    acc.add_incoming(const_float(0.0), entry)
    acc.add_incoming(nxt, body)
    b.position_at_end(exit_)
    b.ret(acc)
    return module, fn


def test_builder_constructs_verified_function():
    module, fn = _sum_function()
    verify_function(fn)
    assert len(fn.blocks) == 4
    assert fn.entry.name == "entry"


def test_builder_requires_position():
    b = IRBuilder()
    with pytest.raises(ValueError):
        b.add(const_int(1), const_int(2))


def test_block_append_after_terminator_rejected():
    module, fn = _sum_function()
    b = IRBuilder(fn.entry)
    with pytest.raises(ValueError):
        b.add(const_int(1), const_int(2))


def test_printer_output_contains_expected_lines():
    module, fn = _sum_function()
    text = print_function(fn)
    assert "define double @total(i64 %n)" in text
    assert "%i = phi i64 [ 0, %entry ], [ %ni, %body ]" in text
    assert "%cmp = icmp slt i64 %i, %n" in text
    assert "br i1 %cmp, label %body, label %exit" in text
    assert "%ptr = gep double* @a, i64 %i" in text
    assert "ret double %s" in text


def test_print_module_lists_globals_and_declarations():
    module, fn = _sum_function()
    module.add_function("sqrt", FunctionType(DOUBLE, (DOUBLE,)), ["x"],
                        pure=True)
    text = print_module(module)
    assert "@a = global [16 x double]" in text
    assert "declare pure double @sqrt(double)" in text
    assert "define double @total" in text


def test_module_name_collisions_rejected():
    module = Module("m")
    module.add_global("g", DOUBLE, 1)
    with pytest.raises(ValueError):
        module.add_global("g", DOUBLE, 1)
    module.add_function("f", FunctionType(DOUBLE, ()), [])
    with pytest.raises(ValueError):
        module.add_function("f", FunctionType(DOUBLE, ()), [])


def test_function_block_names_uniquified():
    module = Module("m")
    fn = module.add_function("f", FunctionType(DOUBLE, ()), [])
    first = fn.add_block("x")
    second = fn.add_block("x")
    assert first.name != second.name


def test_value_universe_contents():
    module, fn = _sum_function()
    universe = fn.value_universe()
    kinds = {type(v).__name__ for v in universe}
    assert "Argument" in kinds
    assert "BasicBlock" in kinds
    assert "PhiInst" in kinds
    assert "ConstantInt" in kinds
    assert "GlobalVariable" in kinds
