"""Smoke tests: every example script runs cleanly."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "ep_histogram.py", "custom_idiom.py"],
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_quickstart_reports_speedup():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "speedup" in result.stdout
    assert "identical to sequential" in result.stdout


def test_custom_idiom_finds_only_dot_products():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, "custom_idiom.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "plain_dot: dot product" in result.stdout
    assert "weighted_norm: no dot product" in result.stdout
    assert "plain_sum: no dot product" in result.stdout
