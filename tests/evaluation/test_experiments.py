"""Tests for the evaluation harness (Figures 8-15 and §6 numbers)."""

import pytest

from repro.evaluation import (
    evaluate_benchmark,
    paper,
    run_compile_time,
    run_coverage,
    run_discovery,
    run_scops,
)
from repro.evaluation.discovery import run_all_discovery, summary_against_paper
from repro.evaluation.render import bar_chart, table
from repro.runtime import MachineModel


def test_render_table_and_bars():
    text = table(["a", "b"], [["x", 1], ["y", 2.5]], title="T")
    assert "T" in text and "x" in text and "2.500" in text
    bars = bar_chart(["p", "q"], [1.0, 2.0], title="B")
    assert "B" in bars and "#" in bars


def test_discovery_nas_matches_paper():
    result = run_discovery("NAS")
    scalars, histograms, icc_total, polly_total = result.totals
    assert scalars == 35
    assert histograms == 3
    assert icc_total == paper.ICC_PER_SUITE["NAS"]
    assert polly_total == paper.POLLY_PER_SUITE["NAS"]
    assert all(row.expected_ok for row in result.rows)
    assert "TOTAL" in result.render()


def test_discovery_parboil_and_rodinia():
    parboil = run_discovery("Parboil")
    rodinia = run_discovery("Rodinia")
    assert parboil.totals[2] == paper.ICC_PER_SUITE["Parboil"]
    assert rodinia.totals[2] == paper.ICC_PER_SUITE["Rodinia"]
    assert all(r.expected_ok for r in parboil.rows + rodinia.rows)


def test_discovery_grand_totals():
    results = run_all_discovery()
    scalars = sum(r.totals[0] for r in results.values())
    histograms = sum(r.totals[1] for r in results.values())
    assert scalars == paper.TOTAL_SCALAR_REDUCTIONS
    assert histograms == paper.TOTAL_HISTOGRAM_REDUCTIONS
    summary = summary_against_paper(results)
    assert "84" in summary


def test_scops_statistics():
    results = {name: run_scops(name) for name in
               ("NAS", "Parboil", "Rodinia")}
    total = sum(r.total_scops for r in results.values())
    zero = sum(r.zero_scop_programs for r in results.values())
    assert total == paper.TOTAL_SCOPS
    assert zero == paper.ZERO_SCOP_PROGRAMS
    assert all(
        row.expected_ok for r in results.values() for row in r.rows
    )


def test_coverage_parboil_sgemm_exception():
    """§6.2: sgemm is the one scalar-reduction bottleneck."""
    result = run_coverage("Parboil")
    by_name = {r.benchmark: r for r in result.rows}
    assert by_name["sgemm"].scalar_coverage > 0.5
    assert by_name["tpacf"].histogram_coverage > 0.8
    assert by_name["histo"].histogram_coverage > 0.4
    # Most scalar regions are irrelevant to runtime.
    others = [
        r.scalar_coverage for name, r in by_name.items()
        if name not in ("sgemm",)
    ]
    assert max(others) < 0.45


def test_speedup_kmeans_transform_fails():
    row = evaluate_benchmark("kmeans")
    assert row.ours is None
    assert "multiple histogram updates" in row.failure_reason
    assert row.original is not None and row.original > 1.0


def test_speedup_ep_shape():
    row = evaluate_benchmark("EP")
    assert row.ours is not None
    assert row.results_match
    # Paper: +62%, Amdahl bound +83% at 46% coverage on 64 cores.
    assert 1.3 < row.ours < 2.0
    # The original coarse version outperforms reduction parallelism.
    assert row.original > row.ours


def test_compile_time_harness():
    result = run_compile_time()
    assert len(result.seconds) == 40
    assert result.mean > 0
    assert "detection" in result.render()


def test_machine_model_cost_paths():
    machine = MachineModel(cores=64)
    assert machine.spawn_path_cost(1) == 0
    assert machine.spawn_path_cost(64) == machine.spawn_cost * 6
    assert machine.merge_path_cost(2, 100) == (
        100 * machine.merge_cost_per_element
    )
    assert machine.alloc_path_cost(64, 10) > 0
