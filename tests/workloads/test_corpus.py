"""Corpus validation: every one of the 40 programs must compile, run,
and produce exactly the detection counts the paper reports."""

import pytest

from repro.baselines import icc, polly
from repro.idioms import find_reductions
from repro.runtime import Interpreter, Memory
from repro.workloads import SUITE_NAMES, all_programs, program, suite

ALL = all_programs()
IDS = [f"{p.suite}-{p.name}" for p in ALL]


@pytest.fixture(scope="module")
def detection_cache():
    cache = {}
    for prog in ALL:
        module = prog.compile()
        cache[id(prog)] = (module, find_reductions(module))
    return cache


def test_corpus_has_40_programs():
    assert len(ALL) == 40
    assert len(suite("NAS")) == 10
    assert len(suite("Parboil")) == 11
    assert len(suite("Rodinia")) == 19


@pytest.mark.parametrize("prog", ALL, ids=IDS)
def test_program_compiles_and_verifies(prog):
    module = prog.compile()
    assert "main" in module.functions


@pytest.mark.parametrize("prog", ALL, ids=IDS)
def test_our_detection_counts(prog, detection_cache):
    module, report = detection_cache[id(prog)]
    scalars, histograms = report.counts()
    assert scalars == prog.expectation.ours_scalars
    assert histograms == prog.expectation.ours_histograms


@pytest.mark.parametrize("prog", ALL, ids=IDS)
def test_icc_model_counts(prog, detection_cache):
    module, _ = detection_cache[id(prog)]
    assert icc.detected_reduction_count(module) == prog.expectation.icc


@pytest.mark.parametrize("prog", ALL, ids=IDS)
def test_polly_model_counts(prog, detection_cache):
    module, _ = detection_cache[id(prog)]
    report = polly.analyze_module(module)
    scops, reduction_scops = report.counts()
    assert scops == prog.expectation.scops
    assert reduction_scops == prog.expectation.reduction_scops
    assert len(report.reductions) == prog.expectation.polly_reductions


@pytest.mark.parametrize(
    "prog",
    [p for p in ALL if p.name not in
     ("EP", "IS", "histo", "tpacf", "kmeans")],
    ids=[f"{p.suite}-{p.name}" for p in ALL if p.name not in
         ("EP", "IS", "histo", "tpacf", "kmeans")],
)
def test_program_main_executes(prog):
    """Every non-performance program runs to completion quickly."""
    module = prog.compile()
    interp = Interpreter(module, Memory(module), max_instructions=3_000_000)
    result = interp.call(module.get_function("main"), [])
    assert result == 0
    assert interp.output  # every main prints a checksum


def test_suite_totals_match_paper():
    per_suite = {name: [0, 0, 0, 0] for name in SUITE_NAMES}
    for prog in ALL:
        e = prog.expectation
        totals = per_suite[prog.suite]
        totals[0] += e.ours_scalars
        totals[1] += e.ours_histograms
        totals[2] += e.icc
        totals[3] += e.polly_reductions
    assert sum(t[0] for t in per_suite.values()) == 84
    assert sum(t[1] for t in per_suite.values()) == 6
    assert per_suite["NAS"][2] == 25
    assert per_suite["Parboil"][2] == 3
    assert per_suite["Rodinia"][2] == 23
    assert sum(t[3] for t in per_suite.values()) == 4


def test_named_paper_facts():
    assert program("UA").expectation.ours_total == 11
    assert program("cutcp").expectation.ours_total == 7
    assert program("particlefilter").expectation.ours_total == 9
    assert program("IS").expectation.ours_histograms == 1
    assert program("IS").expectation.icc == 0
    assert program("SP").expectation.icc == 0
    for name in ("BT", "SP", "sgemm", "leukocyte"):
        assert program(name).expectation.polly_reductions == 1
    rodinia_with = [
        p for p in suite("Rodinia") if p.expectation.ours_total > 0
    ]
    assert len(rodinia_with) == 15


def test_scop_statistics_match_paper():
    total = sum(p.expectation.scops for p in ALL)
    zero = sum(1 for p in ALL if p.expectation.scops == 0)
    assert total == 62
    assert zero == 23
    stencils = sum(
        program(n).expectation.scops for n in ("LU", "BT", "SP", "MG")
    )
    assert stencils == 37


def test_histograms_per_suite():
    for suite_name, expected in (("NAS", 3), ("Parboil", 2),
                                 ("Rodinia", 1)):
        actual = sum(
            p.expectation.ours_histograms for p in suite(suite_name)
        )
        assert actual == expected


def test_program_lookup_by_suite():
    nas_bfs = program("bfs", "Parboil")
    rodinia_bfs = program("bfs", "Rodinia")
    assert nas_bfs.suite == "Parboil"
    assert rodinia_bfs.suite == "Rodinia"
    with pytest.raises(KeyError):
        program("nonexistent")


def test_program_lookup_uses_index_invalidated_by_clear_cache():
    """``program()`` resolves through the (name, suite) index built
    once per cache generation — and a suite-less name resolves to its
    first match in suite order, same as the old linear scan."""
    from repro.workloads import clear_cache, corpus_keys
    from repro.workloads import corpus as corpus_module

    clear_cache()
    assert corpus_module._INDEX is None
    before = program("BT")
    assert corpus_module._INDEX is not None
    # Same object as the suite list's entry: the index is a view, not
    # a copy.
    assert before is suite("NAS")[0]
    assert program("bfs") is program("bfs", "Parboil")  # suite order
    # clear_cache drops the index with the suite cache; fresh program
    # objects appear afterwards.
    clear_cache()
    assert corpus_module._INDEX is None
    after = program("BT")
    assert after is not before
    assert after.name == before.name
    assert corpus_keys()[0] == ("BT", "NAS")
